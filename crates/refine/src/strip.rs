//! Coordinate-strip selection around a geometric separator (§3, Fig 2).
//!
//! Instead of selecting a band by graph hops from the separator (as
//! Pt-Scotch does), ScalaPart uses the coordinate information it already
//! has: the strip is the set of vertices whose signed distance from the
//! separating circle is smallest in magnitude. The paper sizes the strip at
//! a small multiple of the separator size (Fig 2 shows 5.6×).

/// Movable mask containing the `target` vertices closest to the separator
/// (by |signed distance|). Always includes every vertex with signed
/// distance of minimal magnitude ties; the mask size is ≥ min(target, n).
pub fn strip_around_separator(signed: &[f64], target: usize) -> Vec<bool> {
    let n = signed.len();
    let mut mask = vec![false; n];
    if n == 0 {
        return mask;
    }
    let target = target.clamp(1, n);
    let mut order: Vec<u32> = (0..n as u32).collect();
    order.select_nth_unstable_by(target - 1, |&a, &b| {
        signed[a as usize]
            .abs()
            .partial_cmp(&signed[b as usize].abs())
            .unwrap()
    });
    let width = signed[order[target - 1] as usize].abs();
    for (v, &s) in signed.iter().enumerate() {
        if s.abs() <= width {
            mask[v] = true;
        }
    }
    mask
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strip_selects_nearest_vertices() {
        let signed: Vec<f64> = vec![-3.0, -1.0, -0.1, 0.2, 1.5, 4.0];
        let mask = strip_around_separator(&signed, 2);
        assert_eq!(mask, vec![false, false, true, true, false, false]);
    }

    #[test]
    fn strip_includes_ties() {
        let signed = vec![-1.0, 1.0, 1.0, 5.0];
        let mask = strip_around_separator(&signed, 2);
        // Width is 1.0 and three vertices tie at |1.0|.
        assert_eq!(mask.iter().filter(|&&b| b).count(), 3);
    }

    #[test]
    fn target_clamps_to_n() {
        let signed = vec![0.5, -0.5];
        let mask = strip_around_separator(&signed, 100);
        assert!(mask.iter().all(|&b| b));
        assert!(strip_around_separator(&[], 5).is_empty());
    }

    #[test]
    fn strip_grows_with_target() {
        let signed: Vec<f64> = (0..100).map(|i| i as f64 - 50.0).collect();
        let small = strip_around_separator(&signed, 10);
        let large = strip_around_separator(&signed, 40);
        let cs = small.iter().filter(|&&b| b).count();
        let cl = large.iter().filter(|&&b| b).count();
        assert!(cl > cs);
        // Nesting: everything in the small strip is in the large one.
        for (s, l) in small.iter().zip(&large) {
            assert!(!s || *l);
        }
    }
}
