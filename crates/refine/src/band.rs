//! Hop-based band selection (the Pt-Scotch band-graph approach the paper
//! contrasts its strip with): movable vertices are those within `hops` BFS
//! steps of a cut-edge endpoint.

use sp_graph::{Bisection, Graph};
use std::collections::VecDeque;

/// Movable mask of vertices within `hops` hops of the current cut.
pub fn band_by_hops(g: &Graph, bi: &Bisection, hops: u32) -> Vec<bool> {
    let n = g.n();
    let mut dist = vec![u32::MAX; n];
    let mut q = VecDeque::new();
    for v in 0..n as u32 {
        let sv = bi.side(v);
        if g.neighbors(v).iter().any(|&u| bi.side(u) != sv) {
            dist[v as usize] = 0;
            q.push_back(v);
        }
    }
    while let Some(v) = q.pop_front() {
        let d = dist[v as usize];
        if d >= hops {
            continue;
        }
        for &u in g.neighbors(v) {
            if dist[u as usize] == u32::MAX {
                dist[u as usize] = d + 1;
                q.push_back(u);
            }
        }
    }
    dist.into_iter().map(|d| d != u32::MAX).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sp_graph::gen::grid_2d;

    #[test]
    fn band_zero_is_exactly_the_boundary() {
        let g = grid_2d(8, 8);
        let bi = Bisection::from_fn(g.n(), |v| (v as usize % 8) >= 4);
        let mask = band_by_hops(&g, &bi, 0);
        let boundary = bi.boundary(&g);
        let in_mask: Vec<u32> = (0..g.n() as u32).filter(|&v| mask[v as usize]).collect();
        assert_eq!(in_mask, boundary);
    }

    #[test]
    fn band_grows_with_hops() {
        let g = grid_2d(10, 10);
        let bi = Bisection::from_fn(g.n(), |v| (v as usize % 10) >= 5);
        let c0 = band_by_hops(&g, &bi, 0).iter().filter(|&&b| b).count();
        let c2 = band_by_hops(&g, &bi, 2).iter().filter(|&&b| b).count();
        assert!(c2 > c0);
        assert_eq!(c0, 20); // two columns flank the cut
        assert_eq!(c2, 60); // six columns
    }

    #[test]
    fn uncut_graph_has_empty_band() {
        let g = grid_2d(4, 4);
        let bi = Bisection::from_fn(g.n(), |_| false);
        assert!(band_by_hops(&g, &bi, 3).iter().all(|&b| !b));
    }
}
