//! Kernighan–Lin pairwise-swap refinement: a simple O(n²·passes) reference
//! used to sanity-check FM on small graphs (swaps preserve balance exactly).

use sp_graph::{Bisection, Graph};

/// One-or-more KL passes; returns the final weighted cut. Only suitable for
/// small graphs.
pub fn kl_refine(g: &Graph, bi: &mut Bisection, max_passes: usize) -> f64 {
    let n = g.n() as u32;
    let mut cut = bi.cut(g);
    for _ in 0..max_passes {
        let mut improved = false;
        // Greedy single swaps (simplified KL: no tentative sequences).
        loop {
            let mut best: Option<(f64, u32, u32)> = None;
            let d = |v: u32, bi: &Bisection| -> f64 {
                let sv = bi.side(v);
                let mut gain = 0.0;
                for (u, w) in g.neighbors_w(v) {
                    if bi.side(u) == sv {
                        gain -= w;
                    } else {
                        gain += w;
                    }
                }
                gain
            };
            for a in 0..n {
                if bi.side(a) != 0 {
                    continue;
                }
                let da = d(a, bi);
                for b in 0..n {
                    if bi.side(b) != 1 {
                        continue;
                    }
                    let db = d(b, bi);
                    let w_ab = g
                        .neighbors_w(a)
                        .find(|&(u, _)| u == b)
                        .map(|(_, w)| w)
                        .unwrap_or(0.0);
                    let gain = da + db - 2.0 * w_ab;
                    if gain > 1e-12 && best.as_ref().is_none_or(|(g0, _, _)| gain > *g0) {
                        best = Some((gain, a, b));
                    }
                }
            }
            let Some((gain, a, b)) = best else { break };
            bi.flip(a);
            bi.flip(b);
            cut -= gain;
            improved = true;
        }
        if !improved {
            break;
        }
    }
    cut
}

#[cfg(test)]
mod tests {
    use super::*;
    use sp_graph::gen::grid_2d;

    #[test]
    fn kl_preserves_side_counts() {
        let g = grid_2d(6, 6);
        let mut bi = Bisection::from_fn(g.n(), |v| v % 2 == 0);
        let before = bi.counts();
        kl_refine(&g, &mut bi, 3);
        assert_eq!(bi.counts(), before);
    }

    #[test]
    fn kl_improves_interleaved_split() {
        let g = grid_2d(6, 6);
        let mut bi = Bisection::from_fn(g.n(), |v| v % 2 == 0);
        let before = bi.cut(&g);
        let after = kl_refine(&g, &mut bi, 5);
        assert!(after < before / 2.0, "cut {before} -> {after}");
        assert!((bi.cut(&g) - after).abs() < 1e-9);
    }

    #[test]
    fn kl_agrees_with_fm_on_quality_class() {
        let g = grid_2d(8, 8);
        let mut bi_kl = Bisection::from_fn(g.n(), |v| v % 2 == 0);
        let mut bi_fm = bi_kl.clone();
        let kl = kl_refine(&g, &mut bi_kl, 5);
        let fm = crate::fm::fm_refine(
            &g,
            &mut bi_fm,
            None,
            &crate::fm::FmConfig {
                max_passes: 8,
                balance_tol: 0.01,
                ..Default::default()
            },
        )
        .cut_after;
        // KL's pairwise swaps repair the checkerboard to near-optimal; FM's
        // single moves under a tight balance constraint are known to be
        // weaker from this adversarial start — it must still at least halve
        // the cut (112 → ≤ 56).
        assert!(kl <= 20.0, "KL cut {kl}");
        assert!(fm <= 56.0, "FM cut {fm}");
    }
}
