//! A minimal JSON parser for the wire protocol.
//!
//! The workspace deliberately avoids serde (DESIGN.md "Dependencies
//! actually used"); sp-trace already *emits* JSON, and the service front
//! end is the first component that must also *read* it. This is a strict
//! recursive-descent parser over request-sized inputs: depth-limited
//! (adversarial nesting cannot blow the stack), rejects trailing garbage,
//! and handles the full string escape set including surrogate pairs.
//! Numbers parse as `f64`, which is exact for every integer the protocol
//! carries (counts, seeds ≤ 2⁵³; seeds above that can be sent as strings).

/// A parsed JSON value. Object keys keep insertion order; duplicate keys
/// are rejected at parse time (a classic request-smuggling vector).
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Value>),
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Parse a complete JSON document (no trailing content allowed).
    pub fn parse(s: &str) -> Result<Value, String> {
        let mut p = Parser {
            b: s.as_bytes(),
            i: 0,
        };
        p.skip_ws();
        let v = p.value(0)?;
        p.skip_ws();
        if p.i != p.b.len() {
            return Err(format!("trailing content at byte {}", p.i));
        }
        Ok(v)
    }

    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// Non-negative integer view of a number (exact for ≤ 2⁵³).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(x) if *x >= 0.0 && x.fract() == 0.0 && *x <= 2f64.powi(53) => {
                Some(*x as u64)
            }
            _ => None,
        }
    }

    pub fn as_usize(&self) -> Option<usize> {
        self.as_u64().map(|x| x as usize)
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(a) => Some(a),
            _ => None,
        }
    }
}

const MAX_DEPTH: usize = 64;

struct Parser<'a> {
    b: &'a [u8],
    i: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while self.i < self.b.len() && matches!(self.b[self.i], b' ' | b'\t' | b'\n' | b'\r') {
            self.i += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.b.get(self.i).copied()
    }

    fn expect(&mut self, c: u8) -> Result<(), String> {
        if self.peek() == Some(c) {
            self.i += 1;
            Ok(())
        } else {
            Err(format!(
                "expected '{}' at byte {}, found {:?}",
                c as char,
                self.i,
                self.peek().map(|b| b as char)
            ))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Value, String> {
        if depth > MAX_DEPTH {
            return Err("nesting too deep".into());
        }
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(format!(
                "unexpected {:?} at byte {}",
                other.map(|b| b as char),
                self.i
            )),
        }
    }

    fn literal(&mut self, lit: &str, v: Value) -> Result<Value, String> {
        if self.b[self.i..].starts_with(lit.as_bytes()) {
            self.i += lit.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.i))
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.i;
        if self.peek() == Some(b'-') {
            self.i += 1;
        }
        while let Some(c) = self.peek() {
            if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-') {
                self.i += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.b[start..self.i]).map_err(|e| e.to_string())?;
        let x: f64 = text
            .parse()
            .map_err(|_| format!("bad number '{text}' at byte {start}"))?;
        if !x.is_finite() {
            return Err(format!("non-finite number '{text}'"));
        }
        Ok(Value::Num(x))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek().ok_or("unterminated string")? {
                b'"' => {
                    self.i += 1;
                    return Ok(out);
                }
                b'\\' => {
                    self.i += 1;
                    match self.peek().ok_or("unterminated escape")? {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            self.i += 1;
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: require \uXXXX low half.
                                if self.peek() != Some(b'\\') {
                                    return Err("lone high surrogate".into());
                                }
                                self.i += 1;
                                if self.peek() != Some(b'u') {
                                    return Err("lone high surrogate".into());
                                }
                                self.i += 1;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err("invalid low surrogate".into());
                                }
                                let cp = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(cp).ok_or("invalid surrogate pair")?
                            } else {
                                char::from_u32(hi).ok_or("invalid \\u escape")?
                            };
                            out.push(c);
                            continue; // hex4 already advanced past digits
                        }
                        c => return Err(format!("bad escape '\\{}'", c as char)),
                    }
                    self.i += 1;
                }
                c if c < 0x20 => return Err("raw control character in string".into()),
                _ => {
                    // Consume the longest run of plain bytes in one go.
                    // The input is a &str, so the run is valid UTF-8, and
                    // every delimiter we stop at is ASCII — always a char
                    // boundary. (Validating per character would re-scan
                    // the whole tail each step: quadratic on the
                    // multi-MiB strings MAX_FRAME allows.)
                    let start = self.i;
                    while let Some(&c) = self.b.get(self.i) {
                        if c == b'"' || c == b'\\' || c < 0x20 {
                            break;
                        }
                        self.i += 1;
                    }
                    let run =
                        std::str::from_utf8(&self.b[start..self.i]).map_err(|e| e.to_string())?;
                    out.push_str(run);
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        if self.i + 4 > self.b.len() {
            return Err("truncated \\u escape".into());
        }
        let s = std::str::from_utf8(&self.b[self.i..self.i + 4]).map_err(|e| e.to_string())?;
        let x = u32::from_str_radix(s, 16).map_err(|_| format!("bad \\u escape '{s}'"))?;
        self.i += 4;
        Ok(x)
    }

    fn array(&mut self, depth: usize) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.i += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.i += 1;
                }
                Some(b']') => {
                    self.i += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.i)),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut fields: Vec<(String, Value)> = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.i += 1;
            return Ok(Value::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            if fields.iter().any(|(k, _)| *k == key) {
                return Err(format!("duplicate key '{key}'"));
            }
            self.skip_ws();
            self.expect(b':')?;
            let v = self.value(depth + 1)?;
            fields.push((key, v));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.i += 1;
                }
                Some(b'}') => {
                    self.i += 1;
                    return Ok(Value::Obj(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.i)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_protocol_shapes() {
        let v = Value::parse(
            r#"{"type":"submit","graph":"gen:grid:8x8","parts":4,"seed":42,"deadline_ms":1000}"#,
        )
        .unwrap();
        assert_eq!(v.get("type").unwrap().as_str(), Some("submit"));
        assert_eq!(v.get("parts").unwrap().as_usize(), Some(4));
        assert_eq!(v.get("seed").unwrap().as_u64(), Some(42));
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn parses_nested_and_roundtrips_sp_partition_json() {
        // The exact shape KWayPartition::to_json emits.
        let v = Value::parse(
            r#"{"schema": "sp-partition-v1", "n": 3, "k": 2, "edge_cut": 1.5, "cut_edges": 1, "imbalance": 0.25, "comm_volume": 2, "part": [0,1,1]}"#,
        )
        .unwrap();
        assert_eq!(v.get("schema").unwrap().as_str(), Some("sp-partition-v1"));
        assert_eq!(v.get("edge_cut").unwrap().as_f64(), Some(1.5));
        let part: Vec<usize> = v
            .get("part")
            .unwrap()
            .as_arr()
            .unwrap()
            .iter()
            .map(|x| x.as_usize().unwrap())
            .collect();
        assert_eq!(part, vec![0, 1, 1]);
    }

    #[test]
    fn strings_escape_correctly() {
        assert_eq!(
            Value::parse(r#""a\"b\\c\ndAé""#).unwrap(),
            Value::Str("a\"b\\c\ndAé".into())
        );
        // Surrogate pair → astral plane.
        assert_eq!(Value::parse(r#""😀""#).unwrap(), Value::Str("😀".into()));
        assert!(Value::parse(r#""\ud83d""#).is_err());
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "}",
            "{\"a\":}",
            "[1,]",
            "[1 2]",
            "{\"a\":1,\"a\":2}", // duplicate key
            "nul",
            "1.2.3",
            "NaN",
            "\"unterminated",
            "{\"a\":1} trailing",
            "1e999", // overflows to inf
        ] {
            assert!(Value::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn depth_limit_holds() {
        let deep = "[".repeat(1000) + &"]".repeat(1000);
        assert!(Value::parse(&deep).is_err());
        let ok = "[".repeat(40) + "1" + &"]".repeat(40);
        assert!(Value::parse(&ok).is_ok());
    }

    #[test]
    fn multi_mib_strings_parse_in_linear_time() {
        // A string near the MAX_FRAME scale must parse as one run, not
        // char-by-char with a full-tail UTF-8 validation per step (that
        // regression turned a 16 MiB frame into an hours-long spin).
        let body = "x".repeat(4 * 1024 * 1024);
        let doc = format!("{{\"pad\": \"{body}é\\n\"}}");
        let v = Value::parse(&doc).unwrap();
        let got = v.get("pad").and_then(Value::as_str).unwrap();
        assert_eq!(got.len(), body.len() + 'é'.len_utf8() + 1);
        assert!(got.ends_with("é\n"));
    }

    #[test]
    fn numbers_parse_exactly() {
        assert_eq!(
            Value::parse("0.0234567890123").unwrap().as_f64(),
            Some(0.0234567890123)
        );
        assert_eq!(Value::parse("-3").unwrap().as_f64(), Some(-3.0));
        assert_eq!(Value::parse("-3").unwrap().as_u64(), None);
        assert_eq!(Value::parse("1.5").unwrap().as_u64(), None);
    }
}
