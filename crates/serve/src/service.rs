//! The in-process partitioning service: a bounded job queue feeding a
//! worker-thread pool, with an LRU result cache in front.
//!
//! Control flow of one request:
//!
//! 1. [`Service::submit`] computes the cache key; a hit returns the stored
//!    result immediately (bit-identical labels, no queueing).
//! 2. A miss tries to enqueue. If the queue is at capacity the submit is
//!    **rejected with a retry-after hint** — explicit backpressure, never
//!    an unbounded queue or a hang. If the service is draining it is
//!    rejected as shutting down.
//! 3. A worker pops the job and runs it on a **fresh simulated machine**
//!    with a deadline-polling [`PipelineObserver`]: when the job's
//!    deadline passes, the next pipeline checkpoint returns `Cancelled`,
//!    the partial work is dropped, and the worker is immediately free for
//!    the next job — cancellation is cooperative, never a thread kill, so
//!    no simulated-rank closure is ever torn down midway.
//! 4. Completed results are validated, serialized once through
//!    [`KWayPartition::to_json`] (the same path the CLI uses), cached, and
//!    handed to the waiting submitter.
//!
//! [`Service::shutdown`] drains gracefully: no new jobs are accepted,
//! queued jobs still run to completion, and workers exit once the queue is
//! empty.

use crate::cache::{CacheKey, LruCache};
use crate::fingerprint::fingerprint_input;
use crate::metrics::ServiceMetrics;
use scalapart::machine::{CostModel, Machine};
use scalapart::obs::{JsonlLog, PhaseProfiler, Record};
use scalapart::{
    recursive_kway_checked_on, Method, PartitionSummary, PipelineObserver, ProfilingObserver,
};
use sp_geometry::Point2;
use sp_graph::Graph;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Service tuning knobs.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Worker threads running partitioning jobs.
    pub workers: usize,
    /// Bounded queue depth; submits beyond this are rejected.
    pub queue_capacity: usize,
    /// LRU result-cache entries.
    pub cache_capacity: usize,
    /// Simulated ranks each job runs on.
    pub ranks: usize,
    /// Deadline applied to jobs that don't carry their own.
    pub default_deadline_ms: u64,
    /// Retry hint returned with queue-full rejections.
    pub retry_after_ms: u64,
    /// Append structured JSONL job records here (`--obs-log`). `None`
    /// disables the log; metrics are always collected (they are passive
    /// atomics) and exported only when scraped.
    pub obs_log: Option<String>,
    /// Run jobs under the per-phase profiler. On by default; the
    /// passivity tests run with it both on and off and assert
    /// bit-identical results.
    pub profile: bool,
    /// Streaming sessions open at once; `session_open` beyond this is
    /// rejected with a `session_quota` error.
    pub max_sessions: usize,
    /// Deltas accepted per session over its lifetime (quota).
    pub session_max_deltas: u64,
    /// Idle TTL: a session untouched this long is evicted at the next
    /// session operation (no background sweeper thread).
    pub session_idle_ms: u64,
    /// Entries in the streaming result cache, keyed by
    /// `(base fingerprint, delta-chain fingerprint)`.
    pub session_cache_capacity: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: 2,
            queue_capacity: 16,
            cache_capacity: 64,
            ranks: 8,
            default_deadline_ms: 30_000,
            retry_after_ms: 50,
            obs_log: None,
            profile: true,
            max_sessions: 8,
            session_max_deltas: 100_000,
            session_idle_ms: 120_000,
            session_cache_capacity: 64,
        }
    }
}

/// One partitioning request.
#[derive(Clone)]
pub struct JobSpec {
    pub graph: Arc<Graph>,
    pub coords: Option<Arc<Vec<Point2>>>,
    pub method: Method,
    pub parts: usize,
    pub seed: u64,
    /// Per-job deadline; `None` uses the service default.
    pub deadline_ms: Option<u64>,
}

/// A finished partition, as stored in the cache and returned to clients.
pub struct PartitionOutput {
    /// Vertex → part labels.
    pub part: Vec<u32>,
    pub k: usize,
    pub summary: PartitionSummary,
    /// Simulated time the job took on its fresh machine.
    pub sim_time: f64,
    /// Input fingerprint (graph ⊕ coords), echoed to clients.
    pub input_fp: u64,
    /// The partition serialized via `KWayPartition::to_json` — computed
    /// once, shared verbatim by every response that hits this entry.
    pub result_json: String,
}

/// Terminal state of an accepted job.
pub enum JobOutcome {
    /// Finished; `cache_hit` tells whether work was actually done.
    Done {
        job_id: u64,
        result: Arc<PartitionOutput>,
        cache_hit: bool,
        latency_ms: f64,
    },
    /// Deadline passed (in queue or at a pipeline checkpoint).
    Timeout { job_id: u64, latency_ms: f64 },
    /// The job panicked or produced an invalid partition.
    Failed {
        job_id: u64,
        message: String,
        latency_ms: f64,
    },
}

impl JobOutcome {
    /// The service-assigned job ID (threaded through responses and log
    /// records).
    pub fn job_id(&self) -> u64 {
        match self {
            JobOutcome::Done { job_id, .. }
            | JobOutcome::Timeout { job_id, .. }
            | JobOutcome::Failed { job_id, .. } => *job_id,
        }
    }
}

/// Why a submit was not accepted.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SubmitError {
    /// Queue at capacity — retry after the hinted delay.
    QueueFull { retry_after_ms: u64 },
    /// The service is draining and accepts no new work.
    ShuttingDown,
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::QueueFull { retry_after_ms } => {
                write!(f, "queue full; retry after {retry_after_ms} ms")
            }
            SubmitError::ShuttingDown => write!(f, "service shutting down"),
        }
    }
}

/// A submitted job to wait on.
pub enum Ticket {
    /// Cache hit — resolved at submit time.
    Hit(JobOutcome),
    /// Queued — wait for a worker.
    Pending(Arc<Job>),
}

impl Ticket {
    /// The service-assigned job ID.
    pub fn job_id(&self) -> u64 {
        match self {
            Ticket::Hit(outcome) => outcome.job_id(),
            Ticket::Pending(job) => job.id,
        }
    }
}

pub struct Job {
    id: u64,
    spec: JobSpec,
    key: CacheKey,
    enqueued: Instant,
    deadline: Instant,
    slot: Mutex<Option<JobOutcome>>,
    done: Condvar,
}

#[derive(Clone, Copy, Debug, Default)]
struct Counters {
    submitted: u64,
    completed: u64,
    cache_hits: u64,
    cache_misses: u64,
    evictions: u64,
    rejected: u64,
    timeouts: u64,
    failed: u64,
}

struct State {
    queue: VecDeque<Arc<Job>>,
    active: usize,
    closed: bool,
    cache: LruCache<PartitionOutput>,
    counters: Counters,
    /// Completed-request latencies (ms), newest last, capped.
    latencies: VecDeque<f64>,
}

const LATENCY_WINDOW: usize = 4096;

struct Inner {
    cfg: ServeConfig,
    state: Mutex<State>,
    job_ready: Condvar,
    idle: Condvar,
    metrics: ServiceMetrics,
    obs_log: Option<JsonlLog>,
    started: Instant,
    next_job_id: AtomicU64,
}

/// The concurrent partitioning service. Cheap to clone; all clones share
/// one queue, worker pool, and cache.
#[derive(Clone)]
pub struct Service {
    inner: Arc<Inner>,
    workers: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl Service {
    /// Start the worker pool with a fresh metric registry.
    pub fn start(cfg: ServeConfig) -> Service {
        Service::start_with_metrics(cfg, ServiceMetrics::new())
    }

    /// Start the worker pool against an existing metric registry (a
    /// restarted shard keeps its scrape endpoint's counters monotone
    /// across drain/restart). Point-in-time gauges — queue depth, its
    /// high-water mark, active workers — describe *this* run only, so
    /// they are reset here: a drained shard that restarts must not
    /// report the previous run's queue-depth high water as its own.
    pub fn start_with_metrics(cfg: ServeConfig, metrics: ServiceMetrics) -> Service {
        let cfg = ServeConfig {
            workers: cfg.workers.max(1),
            queue_capacity: cfg.queue_capacity.max(1),
            ranks: cfg.ranks.max(1),
            ..cfg
        };
        metrics.workers.set(cfg.workers as i64);
        metrics.queue_capacity.set(cfg.queue_capacity as i64);
        metrics.queue_depth.set(0);
        metrics.queue_depth_highwater.set(0);
        metrics.workers_active.set(0);
        // A broken log path degrades to "no log" with a warning — the
        // service must come up regardless.
        let obs_log = cfg.obs_log.as_ref().and_then(|p| match JsonlLog::open(p) {
            Ok(l) => Some(l),
            Err(e) => {
                eprintln!("sp-serve: cannot open obs log {p}: {e}; continuing without");
                None
            }
        });
        let inner = Arc::new(Inner {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                active: 0,
                closed: false,
                cache: LruCache::new(cfg.cache_capacity),
                counters: Counters::default(),
                latencies: VecDeque::new(),
            }),
            job_ready: Condvar::new(),
            idle: Condvar::new(),
            metrics,
            obs_log,
            started: Instant::now(),
            next_job_id: AtomicU64::new(1),
            cfg,
        });
        let workers: Vec<JoinHandle<()>> = (0..inner.cfg.workers)
            .map(|_| {
                let inner = inner.clone();
                std::thread::spawn(move || worker_loop(inner))
            })
            .collect();
        Service {
            inner,
            workers: Arc::new(Mutex::new(workers)),
        }
    }

    fn key_of(&self, spec: &JobSpec) -> CacheKey {
        CacheKey {
            input: fingerprint_input(&spec.graph, spec.coords.as_ref().map(|c| c.as_slice())),
            method: spec.method,
            parts: spec.parts,
            ranks: self.inner.cfg.ranks,
            seed: spec.seed,
        }
    }

    /// Submit a job. Returns immediately: either a resolved cache hit, a
    /// pending ticket, or a backpressure rejection.
    pub fn submit(&self, spec: JobSpec) -> Result<Ticket, SubmitError> {
        let key = self.key_of(&spec);
        let now = Instant::now();
        let job_id = self.inner.next_job_id.fetch_add(1, Ordering::Relaxed);
        let m = &self.inner.metrics;
        m.jobs_submitted.inc();
        if let Some(log) = &self.inner.obs_log {
            log.emit(
                Record::new("job_submitted")
                    .u64("job", job_id)
                    .str("method", spec.method.name())
                    .u64("parts", spec.parts as u64)
                    .u64("seed", spec.seed)
                    .u64("n", spec.graph.n() as u64)
                    .str("fp", &format!("{:016x}", key.input)),
            );
        }
        let mut st = self.inner.state.lock().unwrap();
        st.counters.submitted += 1;
        if let Some(result) = st.cache.get(&key) {
            st.counters.cache_hits += 1;
            st.counters.completed += 1;
            let latency_ms = now.elapsed().as_secs_f64() * 1e3;
            push_latency(&mut st, latency_ms);
            drop(st);
            m.cache_hits.inc();
            m.jobs_completed.inc();
            m.job_latency_ms.observe(latency_ms);
            if let Some(log) = &self.inner.obs_log {
                log.emit(
                    Record::new("job_done")
                        .u64("job", job_id)
                        .str("status", "ok")
                        .bool("cache_hit", true)
                        .f64("latency_ms", latency_ms),
                );
            }
            return Ok(Ticket::Hit(JobOutcome::Done {
                job_id,
                result,
                cache_hit: true,
                latency_ms,
            }));
        }
        if st.closed {
            st.counters.rejected += 1;
            drop(st);
            m.rejected_shutting_down.inc();
            if let Some(log) = &self.inner.obs_log {
                log.emit(
                    Record::new("job_rejected")
                        .u64("job", job_id)
                        .str("reason", "shutting_down"),
                );
            }
            return Err(SubmitError::ShuttingDown);
        }
        if st.queue.len() >= self.inner.cfg.queue_capacity {
            st.counters.rejected += 1;
            drop(st);
            m.rejected_queue_full.inc();
            if let Some(log) = &self.inner.obs_log {
                log.emit(
                    Record::new("job_rejected")
                        .u64("job", job_id)
                        .str("reason", "queue_full"),
                );
            }
            return Err(SubmitError::QueueFull {
                retry_after_ms: self.inner.cfg.retry_after_ms,
            });
        }
        st.counters.cache_misses += 1;
        let deadline_ms = spec
            .deadline_ms
            .unwrap_or(self.inner.cfg.default_deadline_ms);
        let job = Arc::new(Job {
            id: job_id,
            key,
            deadline: now + Duration::from_millis(deadline_ms),
            enqueued: now,
            spec,
            slot: Mutex::new(None),
            done: Condvar::new(),
        });
        st.queue.push_back(job.clone());
        let depth = st.queue.len();
        // Gauge writes stay under the state lock so concurrent pops can't
        // interleave and publish a stale depth. The high-water gauge is
        // the single source of truth for `queue_depth_hwm` in stats.
        m.queue_depth.set(depth as i64);
        m.queue_depth_highwater.set_max(depth as i64);
        drop(st);
        m.cache_misses.inc();
        if let Some(log) = &self.inner.obs_log {
            log.emit(
                Record::new("job_enqueued")
                    .u64("job", job_id)
                    .u64("queue_depth", depth as u64),
            );
        }
        self.inner.job_ready.notify_one();
        Ok(Ticket::Pending(job))
    }

    /// Block until the ticket's job finishes.
    pub fn wait(&self, ticket: Ticket) -> JobOutcome {
        match ticket {
            Ticket::Hit(outcome) => outcome,
            Ticket::Pending(job) => {
                let mut slot = job.slot.lock().unwrap();
                while slot.is_none() {
                    slot = job.done.wait(slot).unwrap();
                }
                slot.take().unwrap()
            }
        }
    }

    /// [`submit`](Self::submit) + [`wait`](Self::wait).
    pub fn submit_wait(&self, spec: JobSpec) -> Result<JobOutcome, SubmitError> {
        let ticket = self.submit(spec)?;
        Ok(self.wait(ticket))
    }

    /// Snapshot of the service counters and queue state.
    pub fn stats(&self) -> ServiceStats {
        let st = self.inner.state.lock().unwrap();
        let c = st.counters;
        let mut lat: Vec<f64> = st.latencies.iter().copied().collect();
        lat.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let q = |p: f64| -> f64 {
            if lat.is_empty() {
                0.0
            } else {
                let idx = ((lat.len() as f64 * p).ceil() as usize).clamp(1, lat.len()) - 1;
                lat[idx]
            }
        };
        ServiceStats {
            workers: self.inner.cfg.workers,
            queue_capacity: self.inner.cfg.queue_capacity,
            queue_depth: st.queue.len(),
            queue_depth_hwm: self.inner.metrics.queue_depth_highwater.get().max(0) as usize,
            active: st.active,
            draining: st.closed,
            submitted: c.submitted,
            completed: c.completed,
            cache_hits: c.cache_hits,
            cache_misses: c.cache_misses,
            cache_evictions: c.evictions,
            rejected: c.rejected,
            timeouts: c.timeouts,
            failed: c.failed,
            cache_entries: st.cache.len(),
            cache_capacity: st.cache.capacity(),
            latency_count: lat.len(),
            latency_p50_ms: q(0.50),
            latency_p90_ms: q(0.90),
            latency_p99_ms: q(0.99),
            latency_max_ms: lat.last().copied().unwrap_or(0.0),
        }
    }

    /// Render the Prometheus text exposition (format 0.0.4) of the
    /// service's metric registry. Scrape-time gauges (uptime, RSS,
    /// cache entries) are refreshed here.
    pub fn prometheus(&self) -> String {
        {
            let st = self.inner.state.lock().unwrap();
            self.inner.metrics.cache_entries.set(st.cache.len() as i64);
        }
        self.inner
            .metrics
            .render(self.inner.started.elapsed().as_secs_f64())
    }

    /// Graceful drain: stop accepting, let queued jobs finish, join the
    /// workers. Idempotent; concurrent callers all return after the drain.
    pub fn shutdown(&self) {
        {
            let mut st = self.inner.state.lock().unwrap();
            st.closed = true;
        }
        self.inner.job_ready.notify_all();
        let handles: Vec<JoinHandle<()>> = std::mem::take(&mut *self.workers.lock().unwrap());
        for h in handles {
            let _ = h.join();
        }
        // Late callers (or clones) wait for the queue to empty too.
        let mut st = self.inner.state.lock().unwrap();
        while !st.queue.is_empty() || st.active > 0 {
            st = self.inner.idle.wait(st).unwrap();
        }
    }

    /// Has shutdown been requested?
    pub fn is_closed(&self) -> bool {
        self.inner.state.lock().unwrap().closed
    }

    /// The service's metric registry (shared with
    /// [`start_with_metrics`](Self::start_with_metrics) callers).
    pub fn metrics(&self) -> &ServiceMetrics {
        &self.inner.metrics
    }

    /// The hottest `limit` cache entries, most recently used first —
    /// the donor side of cache warming. Reading does not disturb
    /// recency.
    pub fn cache_dump(&self, limit: usize) -> Vec<(CacheKey, Arc<PartitionOutput>)> {
        let st = self.inner.state.lock().unwrap();
        st.cache.dump(limit)
    }

    /// Install a warmed entry (the recipient side of cache warming).
    /// Returns `false` without installing when the entry cannot be valid
    /// here: a different simulated-rank count (this shard would compute a
    /// different result for the same key), an unparseable result body, or
    /// labels inconsistent with the advertised `k`. Determinism is
    /// preserved because the stored body is the donor's exact bytes — a
    /// later hit replays them verbatim.
    pub fn cache_load(&self, key: CacheKey, sim_time: f64, result_json: &str) -> bool {
        if key.ranks != self.inner.cfg.ranks {
            return false;
        }
        let Ok(v) = crate::json::Value::parse(result_json) else {
            return false;
        };
        let (Some(n), Some(k), Some(arr)) = (
            v.get("n").and_then(crate::json::Value::as_usize),
            v.get("k").and_then(crate::json::Value::as_usize),
            v.get("part").and_then(crate::json::Value::as_arr),
        ) else {
            return false;
        };
        if arr.len() != n || k == 0 {
            return false;
        }
        let mut part = Vec::with_capacity(arr.len());
        for p in arr {
            let Some(p) = p.as_u64() else { return false };
            if p >= k as u64 {
                return false;
            }
            part.push(p as u32);
        }
        let summary = PartitionSummary {
            n,
            k,
            edge_cut: v
                .get("edge_cut")
                .and_then(crate::json::Value::as_f64)
                .unwrap_or(0.0),
            cut_edges: v
                .get("cut_edges")
                .and_then(crate::json::Value::as_usize)
                .unwrap_or(0),
            imbalance: v
                .get("imbalance")
                .and_then(crate::json::Value::as_f64)
                .unwrap_or(0.0),
            comm_volume: v
                .get("comm_volume")
                .and_then(crate::json::Value::as_usize)
                .unwrap_or(0),
        };
        let output = Arc::new(PartitionOutput {
            part,
            k,
            summary,
            sim_time,
            input_fp: key.input,
            result_json: result_json.to_string(),
        });
        let mut st = self.inner.state.lock().unwrap();
        if st.cache.insert(key, output).is_some() {
            st.counters.evictions += 1;
            self.inner.metrics.cache_evictions.inc();
        }
        self.inner.metrics.cache_entries.set(st.cache.len() as i64);
        true
    }
}

fn push_latency(st: &mut State, ms: f64) {
    if st.latencies.len() >= LATENCY_WINDOW {
        st.latencies.pop_front();
    }
    st.latencies.push_back(ms);
}

/// Deadline polling threaded through the pipeline checkpoints.
struct DeadlineObserver {
    deadline: Instant,
}

impl PipelineObserver for DeadlineObserver {
    fn poll_cancel(&mut self) -> bool {
        Instant::now() >= self.deadline
    }
}

fn worker_loop(inner: Arc<Inner>) {
    let m = &inner.metrics;
    loop {
        let job = {
            let mut st = inner.state.lock().unwrap();
            loop {
                if let Some(j) = st.queue.pop_front() {
                    st.active += 1;
                    m.queue_depth.set(st.queue.len() as i64);
                    m.workers_active.set(st.active as i64);
                    break j;
                }
                if st.closed {
                    inner.idle.notify_all();
                    return;
                }
                st = inner.job_ready.wait(st).unwrap();
            }
        };
        let queue_wait_ms = job.enqueued.elapsed().as_secs_f64() * 1e3;
        m.queue_wait_ms.observe(queue_wait_ms);
        if let Some(log) = &inner.obs_log {
            log.emit(
                Record::new("job_start")
                    .u64("job", job.id)
                    .f64("queue_wait_ms", queue_wait_ms),
            );
        }
        let run_started = Instant::now();
        let (outcome, profile) = run_job(&inner.cfg, &job, m);
        let run_ms = run_started.elapsed().as_secs_f64() * 1e3;
        m.job_run_ms.observe(run_ms);
        m.worker_busy_ms.add(run_ms as u64);
        if let Some(prof) = &profile {
            m.observe_phases(prof.samples());
            if let Some(log) = &inner.obs_log {
                let mut rec = Record::new("phase_profile");
                rec.u64("job", job.id)
                    .json("phases", &prof.to_json())
                    .f64("total_wall_ms", run_ms);
                if let Some(peak) = scalapart::obs::rss::peak_rss_bytes() {
                    rec.f64("peak_rss_mb", scalapart::obs::rss::bytes_to_mib(peak));
                }
                log.emit(&rec);
            }
        }
        let latency_ms;
        let mut evicted = None;
        {
            let mut st = inner.state.lock().unwrap();
            st.active -= 1;
            m.workers_active.set(st.active as i64);
            latency_ms = job.enqueued.elapsed().as_secs_f64() * 1e3;
            match &outcome {
                JobOutcome::Done { result, .. } => {
                    st.counters.completed += 1;
                    evicted = st.cache.insert(job.key, result.clone());
                    if evicted.is_some() {
                        st.counters.evictions += 1;
                    }
                    m.jobs_completed.inc();
                    m.cache_entries.set(st.cache.len() as i64);
                }
                JobOutcome::Timeout { .. } => {
                    st.counters.timeouts += 1;
                    m.jobs_timeout.inc();
                }
                JobOutcome::Failed { .. } => {
                    st.counters.failed += 1;
                    m.jobs_failed.inc();
                }
            }
            push_latency(&mut st, latency_ms);
            if st.queue.is_empty() && st.active == 0 {
                inner.idle.notify_all();
            }
        }
        m.job_latency_ms.observe(latency_ms);
        if let Some(key) = evicted {
            m.cache_evictions.inc();
            if let Some(log) = &inner.obs_log {
                log.emit(Record::new("cache_evict").str("fp", &format!("{:016x}", key.input)));
            }
        }
        if let Some(log) = &inner.obs_log {
            let (status, cache_hit) = match &outcome {
                JobOutcome::Done { cache_hit, .. } => ("ok", *cache_hit),
                JobOutcome::Timeout { .. } => ("timeout", false),
                JobOutcome::Failed { .. } => ("failed", false),
            };
            log.emit(
                Record::new("job_done")
                    .u64("job", job.id)
                    .str("status", status)
                    .bool("cache_hit", cache_hit)
                    .f64("latency_ms", latency_ms)
                    .f64("run_ms", run_ms),
            );
        }
        *job.slot.lock().unwrap() = Some(outcome);
        job.done.notify_all();
    }
}

fn run_job(
    cfg: &ServeConfig,
    job: &Job,
    m: &ServiceMetrics,
) -> (JobOutcome, Option<PhaseProfiler>) {
    let latency = |j: &Job| j.enqueued.elapsed().as_secs_f64() * 1e3;
    if Instant::now() >= job.deadline {
        // Expired while queued: report timeout without starting.
        return (
            JobOutcome::Timeout {
                job_id: job.id,
                latency_ms: latency(job),
            },
            None,
        );
    }
    let spec = &job.spec;
    let graph = spec.graph.clone();
    let coords = spec.coords.clone();
    let (method, parts, seed, ranks) = (spec.method, spec.parts, spec.seed, cfg.ranks);
    let deadline = job.deadline;
    let profile = cfg.profile;
    let superstep_wall = m.superstep_wall_us.clone();
    let occupancy = m.rank_batch_occupancy.clone();
    // Worker threads must survive any panicking job (graceful
    // degradation): a poisoned input becomes a Failed outcome, not a dead
    // worker.
    let run = std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || {
        let mut machine = Machine::new(ranks, CostModel::qdr_infiniband());
        // Host-execution telemetry from the batched superstep executor.
        // The hook observes only — clocks are charged before it fires, so
        // the passivity tests still hold with it installed.
        machine.set_superstep_hook(Box::new(move |info| {
            superstep_wall.observe(info.wall_seconds * 1e6);
            if let Some(pct) = (info.active * 100).checked_div(info.ranks) {
                occupancy.set(pct as i64);
            }
        }));
        let mut deadline_obs = DeadlineObserver { deadline };
        // With profiling on, the profiler wraps the deadline observer —
        // same checkpoints, same cancellation semantics, plus clock/RSS
        // samples at phase boundaries. The passivity tests assert the
        // two paths produce bit-identical partitions.
        let (kp, prof) = if profile {
            let mut obs = ProfilingObserver::wrapping(&mut deadline_obs);
            let kp = recursive_kway_checked_on(
                method,
                &graph,
                coords.as_ref().map(|c| c.as_slice()),
                parts,
                seed,
                &mut machine,
                &mut obs,
            );
            (kp, Some(obs.into_profiler()))
        } else {
            let kp = recursive_kway_checked_on(
                method,
                &graph,
                coords.as_ref().map(|c| c.as_slice()),
                parts,
                seed,
                &mut machine,
                &mut deadline_obs,
            );
            (kp, None)
        };
        (kp.map(|kp| (kp, machine.elapsed())), prof)
    }));
    match run {
        Ok((Ok((kp, sim_time)), prof)) => {
            if let Err(e) = kp.validate(&spec.graph) {
                return (
                    JobOutcome::Failed {
                        job_id: job.id,
                        message: format!("invalid partition: {e}"),
                        latency_ms: latency(job),
                    },
                    prof,
                );
            }
            let result = Arc::new(PartitionOutput {
                summary: kp.summary(&spec.graph),
                result_json: kp.to_json(&spec.graph),
                part: kp.part,
                k: kp.k,
                sim_time,
                input_fp: job.key.input,
            });
            (
                JobOutcome::Done {
                    job_id: job.id,
                    result,
                    cache_hit: false,
                    latency_ms: latency(job),
                },
                prof,
            )
        }
        Ok((Err(scalapart::Cancelled), prof)) => (
            JobOutcome::Timeout {
                job_id: job.id,
                latency_ms: latency(job),
            },
            prof,
        ),
        Err(panic) => {
            let msg = panic
                .downcast_ref::<&str>()
                .map(|s| s.to_string())
                .or_else(|| panic.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "job panicked".into());
            (
                JobOutcome::Failed {
                    job_id: job.id,
                    message: msg,
                    latency_ms: latency(job),
                },
                None,
            )
        }
    }
}

/// Counter snapshot exposed through `stats` requests and `--metrics`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ServiceStats {
    pub workers: usize,
    pub queue_capacity: usize,
    pub queue_depth: usize,
    /// Deepest the queue has been since the service started.
    pub queue_depth_hwm: usize,
    pub active: usize,
    pub draining: bool,
    pub submitted: u64,
    pub completed: u64,
    pub cache_hits: u64,
    pub cache_misses: u64,
    /// LRU evictions from the result cache.
    pub cache_evictions: u64,
    pub rejected: u64,
    pub timeouts: u64,
    pub failed: u64,
    pub cache_entries: usize,
    pub cache_capacity: usize,
    pub latency_count: usize,
    pub latency_p50_ms: f64,
    pub latency_p90_ms: f64,
    pub latency_p99_ms: f64,
    pub latency_max_ms: f64,
}

impl ServiceStats {
    /// Hit rate over resolved lookups (0 when none yet).
    pub fn hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }

    /// JSON snapshot, same emission conventions as sp-trace's metrics
    /// (shortest round-trip floats via [`sp_trace::json::num`]).
    pub fn to_json(&self) -> String {
        use sp_trace::json::num;
        let mut s = String::with_capacity(512);
        s.push_str("{\"schema\": \"sp-serve-stats-v1\"");
        s.push_str(&format!(", \"workers\": {}", self.workers));
        s.push_str(&format!(", \"queue_capacity\": {}", self.queue_capacity));
        s.push_str(&format!(", \"queue_depth\": {}", self.queue_depth));
        s.push_str(&format!(", \"queue_depth_hwm\": {}", self.queue_depth_hwm));
        s.push_str(&format!(", \"active\": {}", self.active));
        s.push_str(&format!(", \"draining\": {}", self.draining));
        s.push_str(&format!(", \"submitted\": {}", self.submitted));
        s.push_str(&format!(", \"completed\": {}", self.completed));
        s.push_str(&format!(", \"cache_hits\": {}", self.cache_hits));
        s.push_str(&format!(", \"cache_misses\": {}", self.cache_misses));
        s.push_str(&format!(", \"cache_evictions\": {}", self.cache_evictions));
        s.push_str(&format!(", \"hit_rate\": {}", num(self.hit_rate())));
        s.push_str(&format!(", \"rejected\": {}", self.rejected));
        s.push_str(&format!(", \"timeouts\": {}", self.timeouts));
        s.push_str(&format!(", \"failed\": {}", self.failed));
        s.push_str(&format!(", \"cache_entries\": {}", self.cache_entries));
        s.push_str(&format!(", \"cache_capacity\": {}", self.cache_capacity));
        s.push_str(&format!(
            ", \"latency_ms\": {{\"count\": {}, \"p50\": {}, \"p90\": {}, \"p99\": {}, \"max\": {}}}",
            self.latency_count,
            num(self.latency_p50_ms),
            num(self.latency_p90_ms),
            num(self.latency_p99_ms),
            num(self.latency_max_ms)
        ));
        s.push('}');
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sp_graph::gen::{grid_2d, grid_2d_coords};

    fn spec(side: usize, method: Method, seed: u64) -> JobSpec {
        JobSpec {
            graph: Arc::new(grid_2d(side, side)),
            coords: Some(Arc::new(grid_2d_coords(side, side))),
            method,
            parts: 4,
            seed,
            deadline_ms: None,
        }
    }

    fn small_cfg() -> ServeConfig {
        ServeConfig {
            workers: 2,
            queue_capacity: 8,
            cache_capacity: 8,
            ranks: 4,
            ..Default::default()
        }
    }

    #[test]
    fn submit_runs_caches_and_reuses_bit_identically() {
        let svc = Service::start(small_cfg());
        let s = spec(16, Method::Rcb, 1);
        let first = svc.submit_wait(s.clone()).unwrap();
        let (labels, fp) = match &first {
            JobOutcome::Done {
                result, cache_hit, ..
            } => {
                assert!(!cache_hit);
                (result.part.clone(), result.input_fp)
            }
            _ => panic!("expected Done"),
        };
        let second = svc.submit_wait(s).unwrap();
        match &second {
            JobOutcome::Done {
                result, cache_hit, ..
            } => {
                assert!(cache_hit, "identical resubmit must hit the cache");
                assert_eq!(result.part, labels);
                assert_eq!(result.input_fp, fp);
            }
            _ => panic!("expected Done"),
        }
        let st = svc.stats();
        assert_eq!(st.cache_hits, 1);
        assert_eq!(st.cache_misses, 1);
        assert_eq!(st.completed, 2);
        assert!(st.hit_rate() > 0.49 && st.hit_rate() < 0.51);
        svc.shutdown();
    }

    #[test]
    fn graphs_differing_only_in_edge_weights_get_distinct_cache_entries() {
        // Cache-key correctness end to end: same topology, different edge
        // weights → different fingerprints → two misses, two entries.
        let svc = Service::start(small_cfg());
        let mk = |w: f64| {
            let mut b = sp_graph::GraphBuilder::new(64);
            for i in 0..63u32 {
                b.add_edge(i, i + 1, if i == 31 { w } else { 1.0 });
            }
            Arc::new(b.build())
        };
        let job = |g: Arc<Graph>| JobSpec {
            graph: g,
            coords: None,
            method: Method::ParMetisLike,
            parts: 2,
            seed: 9,
            deadline_ms: None,
        };
        svc.submit_wait(job(mk(1.0))).unwrap();
        svc.submit_wait(job(mk(1000.0))).unwrap();
        let st = svc.stats();
        assert_eq!(st.cache_misses, 2, "distinct weights must not collide");
        assert_eq!(st.cache_entries, 2);
        assert_eq!(st.cache_hits, 0);
        svc.shutdown();
    }

    #[test]
    fn deadline_expiry_cancels_cooperatively_and_worker_survives() {
        let svc = Service::start(ServeConfig {
            workers: 1,
            ..small_cfg()
        });
        let mut s = spec(48, Method::ScalaPart, 2);
        s.deadline_ms = Some(0);
        match svc.submit_wait(s).unwrap() {
            JobOutcome::Timeout { .. } => {}
            _ => panic!("expected Timeout"),
        }
        // The same worker must immediately serve the next job.
        match svc.submit_wait(spec(12, Method::Rcb, 3)).unwrap() {
            JobOutcome::Done { result, .. } => result
                .part
                .iter()
                .for_each(|&p| assert!((p as usize) < result.k)),
            _ => panic!("expected Done after timeout"),
        }
        let st = svc.stats();
        assert_eq!(st.timeouts, 1);
        assert_eq!(st.completed, 1);
        svc.shutdown();
    }

    #[test]
    fn queue_full_submits_are_rejected_not_hung() {
        let svc = Service::start(ServeConfig {
            workers: 1,
            queue_capacity: 1,
            cache_capacity: 0,
            ranks: 4,
            ..Default::default()
        });
        // Occupy the worker and fill the 1-slot queue, then overflow.
        let slow = || spec(56, Method::ScalaPart, 4);
        let t1 = svc.submit(slow()).unwrap();
        let mut rejected = 0;
        let mut pending = vec![t1];
        for i in 0..6 {
            match svc.submit(spec(56, Method::ScalaPart, 10 + i)) {
                Ok(t) => pending.push(t),
                Err(SubmitError::QueueFull { retry_after_ms }) => {
                    assert!(retry_after_ms > 0);
                    rejected += 1;
                }
                Err(e) => panic!("unexpected {e}"),
            }
        }
        assert!(rejected >= 4, "only {rejected} rejections");
        assert_eq!(svc.stats().rejected, rejected);
        for t in pending {
            match svc.wait(t) {
                JobOutcome::Done { .. } => {}
                _ => panic!("accepted job must complete"),
            }
        }
        svc.shutdown();
    }

    #[test]
    fn shutdown_drains_queued_jobs() {
        let svc = Service::start(ServeConfig {
            workers: 1,
            queue_capacity: 8,
            ..small_cfg()
        });
        let tickets: Vec<Ticket> = (0..4)
            .map(|i| svc.submit(spec(20, Method::Rcb, 100 + i)).unwrap())
            .collect();
        let svc2 = svc.clone();
        let drainer = std::thread::spawn(move || svc2.shutdown());
        for t in tickets {
            match svc.wait(t) {
                JobOutcome::Done { .. } => {}
                _ => panic!("queued job dropped during drain"),
            }
        }
        drainer.join().unwrap();
        assert!(svc.is_closed());
        assert_eq!(svc.stats().completed, 4);
        assert!(matches!(
            svc.submit(spec(8, Method::Rcb, 1)),
            Err(SubmitError::ShuttingDown)
        ));
    }

    #[test]
    fn restart_resets_queue_hwm_but_keeps_counters_monotone() {
        // Regression: a drained shard restarting on the same metric
        // registry used to report the previous run's queue-depth high
        // water in its stats JSON.
        let svc = Service::start(ServeConfig {
            workers: 1,
            ..small_cfg()
        });
        let tickets: Vec<Ticket> = (0..3)
            .map(|i| svc.submit(spec(20, Method::Rcb, 200 + i)).unwrap())
            .collect();
        for t in tickets {
            svc.wait(t);
        }
        let first = svc.stats();
        assert!(first.queue_depth_hwm >= 1, "queue never got deep");
        let completed_before = first.completed;
        svc.shutdown();

        let metrics = svc.inner.metrics.clone();
        let svc2 = Service::start_with_metrics(
            ServeConfig {
                workers: 1,
                ..small_cfg()
            },
            metrics.clone(),
        );
        let st = svc2.stats();
        assert_eq!(
            st.queue_depth_hwm, 0,
            "restart must not inherit the previous run's high water"
        );
        assert!(st.to_json().contains("\"queue_depth_hwm\": 0"));
        // The shared registry keeps cumulative counters monotone.
        assert!(metrics.jobs_completed.get() >= completed_before);
        svc2.submit_wait(spec(12, Method::Rcb, 300)).unwrap();
        assert!(svc2.stats().queue_depth_hwm <= 1);
        svc2.shutdown();
    }

    #[test]
    fn stats_json_is_well_formed() {
        let svc = Service::start(small_cfg());
        svc.submit_wait(spec(12, Method::Rcb, 5)).unwrap();
        let j = svc.stats().to_json();
        assert!(j.contains("\"schema\": \"sp-serve-stats-v1\""), "{j}");
        assert!(j.contains("\"queue_depth\": 0"));
        assert!(j.contains("\"p99\""));
        let parsed = crate::json::Value::parse(&j).unwrap();
        assert_eq!(parsed.get("completed").unwrap().as_u64(), Some(1));
        assert!(parsed.get("latency_ms").unwrap().get("max").is_some());
        svc.shutdown();
    }
}
