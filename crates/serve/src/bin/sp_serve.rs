//! sp-serve binary: run the partitioning daemon or talk to one.
//!
//! ```text
//! sp-serve serve   --addr 127.0.0.1:7070 [--workers N] [--queue N]
//!                  [--cache N] [--ranks N] [--deadline-ms N] [--metrics FILE]
//!                  [--obs-log FILE] [--no-profile]
//! sp-serve submit  --addr 127.0.0.1:7070 --graph gen:grid:32x32
//!                  --method sp --parts 4 [--seed N] [--deadline-ms N]
//!                  [--chaco FILE]
//! sp-serve stats   --addr 127.0.0.1:7070 [--prom]
//! sp-serve shutdown --addr 127.0.0.1:7070
//! sp-serve route   --addr 127.0.0.1:7071 --shard a=127.0.0.1:7070
//!                  [--shard b=HOST:PORT ...] [--vnodes N] [--health-ms N]
//!                  [--warm N] [--forward-timeout-ms N]
//! ```

use sp_serve::net::{Client, Server};
use sp_serve::router::{Router, RouterConfig, RouterServer};
use sp_serve::service::ServeConfig;
use sp_trace::json::escape;
use std::net::{SocketAddr, ToSocketAddrs};
use std::process::ExitCode;

const USAGE_HINT: &str =
    "usage: sp-serve <serve|submit|stats|shutdown|route> --addr HOST:PORT [options]; see --help";

const HELP: &str = "\
sp-serve: long-running partitioning service

subcommands:
  serve      run the daemon (one shard)
  submit     submit one partitioning job and print the response
  stats      print service counters and latency percentiles
  shutdown   drain the queue and stop the daemon
  route      run the distributed-serving router over backend shards

serve options:
  --addr HOST:PORT     listen address (default 127.0.0.1:7070)
  --workers N          worker threads (default 2)
  --queue N            bounded queue depth (default 16)
  --cache N            LRU result-cache entries (default 64)
  --ranks N            simulated ranks per job (default 8)
  --deadline-ms N      default per-job deadline (default 30000)
  --metrics FILE       write a final stats JSON snapshot on exit
  --obs-log FILE       append structured JSONL job records (job_submitted,
                       job_start, phase_profile, job_done, cache_evict)
  --no-profile         disable per-phase wall/RSS profiling of jobs

submit options:
  --addr HOST:PORT     server address
  --graph SPEC         gen:grid:WxH or suite:name[:scale]
  --chaco FILE         submit a Chaco graph file instead of --graph
  --method NAME        sp | sp-pg7nl | rcb | parmetis | ptscotch | g30 | g7 | g7nl
  --parts N            number of parts
  --seed N             RNG seed (default 1)
  --deadline-ms N      per-job deadline

stats options:
  --prom               print Prometheus text exposition instead of the
                       JSON stats snapshot (scrape-friendly)

route options:
  --addr HOST:PORT     router listen address (default 127.0.0.1:7071)
  --shard NAME=ADDR    a backend shard (repeat per shard; at least one)
  --vnodes N           virtual nodes per shard on the hash ring (default 128)
  --health-ms N        health-probe period, 0 disables (default 500)
  --warm N             cache entries streamed per survivor on shard join
                       (default 32)
  --forward-timeout-ms N
                       per-attempt shard socket timeout (default 30000)

The router consistent-hashes each submit's cache key across live shards
and relays responses byte-identically; submit/stats/shutdown work against
the router address exactly as against a single shard.";

fn fail(msg: &str) -> ExitCode {
    eprintln!("sp-serve: {msg}");
    eprintln!("{USAGE_HINT}");
    ExitCode::from(2)
}

struct Args {
    argv: Vec<String>,
}

impl Args {
    /// Pull the value of `--flag`, if present.
    fn take(&mut self, flag: &str) -> Result<Option<String>, String> {
        match self.argv.iter().position(|a| a == flag) {
            None => Ok(None),
            Some(i) => {
                if i + 1 >= self.argv.len() {
                    return Err(format!("{flag} needs a value"));
                }
                self.argv.remove(i);
                Ok(Some(self.argv.remove(i)))
            }
        }
    }

    /// Pull a boolean `--flag` (present or not, no value).
    fn take_flag(&mut self, flag: &str) -> bool {
        match self.argv.iter().position(|a| a == flag) {
            None => false,
            Some(i) => {
                self.argv.remove(i);
                true
            }
        }
    }

    fn take_parsed<T: std::str::FromStr>(&mut self, flag: &str) -> Result<Option<T>, String> {
        match self.take(flag)? {
            None => Ok(None),
            Some(v) => v
                .parse()
                .map(Some)
                .map_err(|_| format!("bad value for {flag}: {v:?}")),
        }
    }
}

fn resolve(addr: &str) -> Result<SocketAddr, String> {
    addr.to_socket_addrs()
        .map_err(|e| format!("bad address {addr:?}: {e}"))?
        .next()
        .ok_or_else(|| format!("address {addr:?} resolved to nothing"))
}

fn main() -> ExitCode {
    let mut argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.iter().any(|a| a == "--help" || a == "-h") {
        println!("{HELP}");
        return ExitCode::SUCCESS;
    }
    if argv.is_empty() {
        return fail("missing subcommand");
    }
    let sub = argv.remove(0);
    let mut args = Args { argv };
    let run = match sub.as_str() {
        "serve" => cmd_serve(&mut args),
        "submit" => cmd_submit(&mut args),
        "stats" => cmd_stats(&mut args),
        "shutdown" => cmd_roundtrip(&mut args, "{\"type\": \"shutdown\"}"),
        "route" => cmd_route(&mut args),
        other => return fail(&format!("unknown subcommand {other:?}")),
    };
    match run {
        Ok(code) => code,
        Err(msg) => fail(&msg),
    }
}

fn cmd_serve(args: &mut Args) -> Result<ExitCode, String> {
    let addr = args
        .take("--addr")?
        .unwrap_or_else(|| "127.0.0.1:7070".into());
    let metrics_path = args.take("--metrics")?;
    let mut cfg = ServeConfig::default();
    if let Some(v) = args.take_parsed("--workers")? {
        cfg.workers = v;
    }
    if let Some(v) = args.take_parsed("--queue")? {
        cfg.queue_capacity = v;
    }
    if let Some(v) = args.take_parsed("--cache")? {
        cfg.cache_capacity = v;
    }
    if let Some(v) = args.take_parsed("--ranks")? {
        cfg.ranks = v;
    }
    if let Some(v) = args.take_parsed("--deadline-ms")? {
        cfg.default_deadline_ms = v;
    }
    cfg.obs_log = args.take("--obs-log")?;
    cfg.profile = !args.take_flag("--no-profile");
    args_done(args)?;
    let server = Server::bind(&addr, cfg).map_err(|e| format!("cannot bind {addr:?}: {e}"))?;
    eprintln!("sp-serve: listening on {}", server.local_addr());
    server.wait();
    let stats = server.service().stats();
    eprintln!(
        "sp-serve: drained; {} completed, {} cache hits, {} rejected, {} timeouts",
        stats.completed, stats.cache_hits, stats.rejected, stats.timeouts
    );
    if let Some(path) = metrics_path {
        std::fs::write(&path, stats.to_json())
            .map_err(|e| format!("cannot write metrics to {path:?}: {e}"))?;
        eprintln!("sp-serve: metrics written to {path}");
    }
    Ok(ExitCode::SUCCESS)
}

fn cmd_route(args: &mut Args) -> Result<ExitCode, String> {
    let addr = args
        .take("--addr")?
        .unwrap_or_else(|| "127.0.0.1:7071".into());
    let mut shards: Vec<(String, String)> = Vec::new();
    while let Some(spec) = args.take("--shard")? {
        let (name, shard_addr) = spec
            .split_once('=')
            .ok_or_else(|| format!("--shard wants NAME=HOST:PORT, got {spec:?}"))?;
        if name.is_empty() || shards.iter().any(|(n, _)| n == name) {
            return Err(format!("shard name {name:?} is empty or repeated"));
        }
        shards.push((name.to_string(), shard_addr.to_string()));
    }
    if shards.is_empty() {
        return Err("route needs at least one --shard NAME=ADDR".into());
    }
    let mut cfg = RouterConfig::default();
    if let Some(v) = args.take_parsed("--vnodes")? {
        cfg.vnodes = v;
    }
    if let Some(v) = args.take_parsed("--health-ms")? {
        cfg.health_interval_ms = v;
    }
    if let Some(v) = args.take_parsed("--warm")? {
        cfg.warm_limit = v;
    }
    if let Some(v) = args.take_parsed("--forward-timeout-ms")? {
        cfg.forward_timeout_ms = v;
    }
    args_done(args)?;
    let router = Router::new(cfg, &shards).map_err(|e| format!("cannot start router: {e}"))?;
    let server =
        RouterServer::bind(&addr, router).map_err(|e| format!("cannot bind {addr:?}: {e}"))?;
    eprintln!(
        "sp-serve: routing on {} across {} shard(s)",
        server.local_addr(),
        shards.len()
    );
    server.wait();
    eprintln!("sp-serve: router stopped");
    Ok(ExitCode::SUCCESS)
}

fn cmd_submit(args: &mut Args) -> Result<ExitCode, String> {
    let addr = args.take("--addr")?.ok_or("submit needs --addr")?;
    let graph = args.take("--graph")?;
    let chaco = args.take("--chaco")?;
    let method = args.take("--method")?.ok_or("submit needs --method")?;
    let parts: usize = args.take_parsed("--parts")?.ok_or("submit needs --parts")?;
    let seed: u64 = args.take_parsed("--seed")?.unwrap_or(1);
    let deadline: Option<u64> = args.take_parsed("--deadline-ms")?;
    args_done(args)?;

    let mut req = String::from("{\"type\": \"submit\"");
    match (graph, chaco) {
        (Some(g), None) => req.push_str(&format!(", \"graph\": \"{}\"", escape(&g))),
        (None, Some(path)) => {
            let text =
                std::fs::read_to_string(&path).map_err(|e| format!("cannot read {path:?}: {e}"))?;
            req.push_str(&format!(", \"chaco\": \"{}\"", escape(&text)));
        }
        (Some(_), Some(_)) => return Err("give either --graph or --chaco, not both".into()),
        (None, None) => return Err("submit needs --graph or --chaco".into()),
    }
    req.push_str(&format!(
        ", \"method\": \"{}\", \"parts\": {parts}, \"seed\": {seed}",
        escape(&method)
    ));
    if let Some(d) = deadline {
        req.push_str(&format!(", \"deadline_ms\": {d}"));
    }
    req.push('}');

    let reply = roundtrip(&addr, &req)?;
    println!("{reply}");
    // Exit 0 only for an ok result so scripts can branch on outcome.
    if reply.contains("\"status\": \"ok\"") {
        Ok(ExitCode::SUCCESS)
    } else {
        Ok(ExitCode::FAILURE)
    }
}

fn cmd_stats(args: &mut Args) -> Result<ExitCode, String> {
    if !args.take_flag("--prom") {
        return cmd_roundtrip(args, "{\"type\": \"stats\"}");
    }
    let addr = args.take("--addr")?.ok_or("need --addr")?;
    args_done(args)?;
    let reply = roundtrip(&addr, "{\"type\": \"metrics\"}")?;
    // Unwrap the exposition text from the response frame's body field.
    let v = sp_serve::json::Value::parse(&reply).map_err(|e| format!("bad response: {e}"))?;
    match v.get("body").and_then(sp_serve::json::Value::as_str) {
        Some(body) => {
            print!("{body}");
            Ok(ExitCode::SUCCESS)
        }
        None => Err(format!("response has no metrics body: {reply}")),
    }
}

fn cmd_roundtrip(args: &mut Args, req: &str) -> Result<ExitCode, String> {
    let addr = args.take("--addr")?.ok_or("need --addr")?;
    args_done(args)?;
    println!("{}", roundtrip(&addr, req)?);
    Ok(ExitCode::SUCCESS)
}

fn roundtrip(addr: &str, req: &str) -> Result<String, String> {
    let addr = resolve(addr)?;
    let mut client = Client::connect(&addr).map_err(|e| format!("cannot connect: {e}"))?;
    client
        .request(req)
        .map_err(|e| format!("request failed: {e}"))
}

fn args_done(args: &mut Args) -> Result<(), String> {
    match args.argv.first() {
        None => Ok(()),
        Some(a) => Err(format!("unknown argument {a:?}")),
    }
}
