//! Consistent-hash ring mapping job routing keys to shards.
//!
//! Each shard contributes `vnodes` points on a `u64` ring; a key is owned
//! by the first point clockwise from it. Removing a shard removes only
//! that shard's points, so every key it did **not** own keeps its owner —
//! failover re-homes exactly the dead shard's keyspace and nothing else
//! (no resharding storm). The point hash mixes an FNV-1a of the shard
//! name through splitmix64, which spreads even adjacent names
//! (`shard-1`, `shard-2`) uniformly around the ring.
//!
//! Determinism note (DESIGN.md "Distributed serving"): the ring decides
//! *placement only*. A job's result bytes are fixed by its cache key; the
//! ring only picks which shard computes or replays them, so rehashing on
//! failover is invisible in response payloads.

use sp_trace::fnv::Fingerprint;

/// Mixing step so ring points derived from one name differ wildly.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Default virtual nodes per shard. 128 points keep the spread within
/// ~1.5x of ideal for 2–16 shards (pinned by the proptests below).
pub const DEFAULT_VNODES: usize = 128;

#[derive(Clone, Debug)]
pub struct Ring {
    /// `(point, shard index)` sorted by point.
    points: Vec<(u64, u32)>,
    vnodes: usize,
    shards: Vec<String>,
}

impl Ring {
    /// Build a ring over `shards` (names must be distinct) with `vnodes`
    /// points each.
    pub fn new<S: AsRef<str>>(shards: &[S], vnodes: usize) -> Ring {
        let vnodes = vnodes.max(1);
        let shards: Vec<String> = shards.iter().map(|s| s.as_ref().to_string()).collect();
        let mut points = Vec::with_capacity(shards.len() * vnodes);
        for (idx, name) in shards.iter().enumerate() {
            let mut fp = Fingerprint::new();
            fp.bytes(name.as_bytes());
            let mut state = fp.finish();
            for _ in 0..vnodes {
                points.push((splitmix64(&mut state), idx as u32));
            }
        }
        points.sort_unstable();
        Ring {
            points,
            vnodes,
            shards,
        }
    }

    /// The shard owning `key`: first ring point at or clockwise of the
    /// key's position, wrapping at the top. `None` on an empty ring.
    pub fn owner(&self, key: u64) -> Option<&str> {
        if self.points.is_empty() {
            return None;
        }
        let i = self.points.partition_point(|&(p, _)| p < key);
        let (_, shard) = self.points[i % self.points.len()];
        Some(&self.shards[shard as usize])
    }

    /// A new ring without `shard`. Surviving shards keep their points, so
    /// only keys the removed shard owned change owner.
    pub fn without(&self, shard: &str) -> Ring {
        let names: Vec<&String> = self.shards.iter().filter(|s| *s != shard).collect();
        Ring::new(&names, self.vnodes)
    }

    pub fn shards(&self) -> &[String] {
        &self.shards
    }

    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn names(n: usize) -> Vec<String> {
        (0..n).map(|i| format!("shard-{i}")).collect()
    }

    /// Deterministic key sample, independent of the ring's own hashing.
    fn keys(count: usize, seed: u64) -> Vec<u64> {
        let mut state = seed;
        (0..count).map(|_| splitmix64(&mut state)).collect()
    }

    #[test]
    fn spread_is_within_2x_of_ideal_for_2_to_16_shards() {
        let sample = keys(16_384, 0xD15C);
        for n in 2..=16usize {
            let ring = Ring::new(&names(n), DEFAULT_VNODES);
            let mut counts = vec![0usize; n];
            for &k in &sample {
                let owner = ring.owner(k).unwrap();
                let idx: usize = owner.strip_prefix("shard-").unwrap().parse().unwrap();
                counts[idx] += 1;
            }
            let ideal = sample.len() as f64 / n as f64;
            for (i, &c) in counts.iter().enumerate() {
                assert!(
                    (c as f64) < 2.0 * ideal,
                    "{n} shards: shard-{i} owns {c} of {} keys (ideal {ideal:.0})",
                    sample.len()
                );
                assert!(
                    (c as f64) > ideal / 2.0,
                    "{n} shards: shard-{i} starves with {c} keys (ideal {ideal:.0})"
                );
            }
        }
    }

    #[test]
    fn removal_moves_only_the_dead_shards_keys() {
        let sample = keys(8_192, 0xFA11);
        for n in 2..=16usize {
            let ring = Ring::new(&names(n), DEFAULT_VNODES);
            let dead = format!("shard-{}", n / 2);
            let survivors = ring.without(&dead);
            let mut moved_from_alive = 0usize;
            let mut rehomed = 0usize;
            for &k in &sample {
                let before = ring.owner(k).unwrap().to_string();
                let after = survivors.owner(k).unwrap();
                if before == dead {
                    rehomed += 1;
                    assert_ne!(after, dead);
                } else if after != before {
                    moved_from_alive += 1;
                }
            }
            assert_eq!(
                moved_from_alive, 0,
                "{n} shards: removing {dead} must not reshuffle surviving shards' keys"
            );
            assert!(rehomed > 0, "{n} shards: dead shard owned nothing sampled");
        }
    }

    #[test]
    fn ownership_is_deterministic_and_total() {
        let ring = Ring::new(&names(5), 64);
        let again = Ring::new(&names(5), 64);
        for k in [0u64, 1, u64::MAX, 0x8000_0000_0000_0000] {
            assert_eq!(ring.owner(k), again.owner(k));
            assert!(ring.owner(k).is_some());
        }
        assert!(Ring::new(&Vec::<String>::new(), 64).owner(7).is_none());
    }

    // With the offline proptest stub, `proptest!` expands to nothing and
    // these imports go unused; the real crate exercises them in CI.
    #[allow(unused_imports)]
    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

            /// Uniform key spread within 2x of ideal across 2–16 shards,
            /// for arbitrary key samples and shard counts.
            #[test]
            fn spread_within_2x(seed in 0u64..u64::MAX, n in 2usize..=16) {
                let sample = keys(4_096, seed);
                let ring = Ring::new(&names(n), DEFAULT_VNODES);
                let mut counts = vec![0usize; n];
                for &k in &sample {
                    let idx: usize = ring
                        .owner(k)
                        .unwrap()
                        .strip_prefix("shard-")
                        .unwrap()
                        .parse()
                        .unwrap();
                    counts[idx] += 1;
                }
                let ideal = sample.len() as f64 / n as f64;
                for &c in &counts {
                    prop_assert!((c as f64) < 2.0 * ideal, "spread {counts:?}");
                }
            }

            /// Removing one shard re-homes only that shard's keys.
            #[test]
            fn removal_is_minimal(seed in 0u64..u64::MAX, n in 2usize..=16, dead_idx in 0usize..16) {
                let sample = keys(2_048, seed);
                let ring = Ring::new(&names(n), DEFAULT_VNODES);
                let dead = format!("shard-{}", dead_idx % n);
                let survivors = ring.without(&dead);
                for &k in &sample {
                    let before = ring.owner(k).unwrap().to_string();
                    let after = survivors.owner(k).unwrap();
                    if before != dead {
                        prop_assert_eq!(after, before.as_str(), "key {} moved off a survivor", k);
                    } else {
                        prop_assert_ne!(after, dead.as_str());
                    }
                }
            }
        }
    }
}
