//! LRU result cache.
//!
//! Keyed by `(input fingerprint, method, parts, ranks, seed)` — everything
//! that determines the partitioner's output bit-for-bit (the simulated
//! rank count participates because recursive bisection splits rank groups,
//! which changes sub-bisection seeds' machines and hence results). A hit
//! returns the exact `Arc` stored at insert time, so repeated identical
//! requests receive bit-identical labels without re-running anything.
//!
//! Recency is tracked with a monotone stamp per entry; eviction scans for
//! the minimum stamp. That is O(capacity) per insert-when-full, which is
//! deliberate: capacities are small (default 64, entries are whole label
//! vectors), and the scan is branch-predictable — simpler and cheaper at
//! this scale than an intrusive list.

use scalapart::Method;
use std::collections::HashMap;
use std::sync::Arc;

/// Everything that determines a job's output bit-for-bit.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// [`fingerprint_input`](crate::fingerprint::fingerprint_input) of the
    /// graph and any request coordinates.
    pub input: u64,
    pub method: Method,
    pub parts: usize,
    pub ranks: usize,
    pub seed: u64,
}

pub struct LruCache<V> {
    capacity: usize,
    stamp: u64,
    map: HashMap<CacheKey, (u64, Arc<V>)>,
}

impl<V> LruCache<V> {
    pub fn new(capacity: usize) -> Self {
        LruCache {
            capacity,
            stamp: 0,
            map: HashMap::with_capacity(capacity.min(1024)),
        }
    }

    /// Look up and refresh recency.
    pub fn get(&mut self, key: &CacheKey) -> Option<Arc<V>> {
        self.stamp += 1;
        let stamp = self.stamp;
        self.map.get_mut(key).map(|(s, v)| {
            *s = stamp;
            v.clone()
        })
    }

    /// Insert (or refresh) an entry, evicting the least recently used
    /// entry if the cache is full. Returns the evicted key, if any, so
    /// the caller can count evictions. A zero-capacity cache stores
    /// nothing (and evicts nothing).
    pub fn insert(&mut self, key: CacheKey, value: Arc<V>) -> Option<CacheKey> {
        if self.capacity == 0 {
            return None;
        }
        self.stamp += 1;
        let mut evicted = None;
        if !self.map.contains_key(&key) && self.map.len() >= self.capacity {
            if let Some(oldest) = self
                .map
                .iter()
                .min_by_key(|(_, (s, _))| *s)
                .map(|(k, _)| *k)
            {
                self.map.remove(&oldest);
                evicted = Some(oldest);
            }
        }
        self.map.insert(key, (self.stamp, value));
        evicted
    }

    /// Up to `limit` entries, hottest (most recently used) first — the
    /// donor side of cache warming streams these to a joining shard.
    /// Does not touch recency stamps.
    pub fn dump(&self, limit: usize) -> Vec<(CacheKey, Arc<V>)> {
        let mut entries: Vec<(u64, CacheKey, Arc<V>)> = self
            .map
            .iter()
            .map(|(k, (s, v))| (*s, *k, v.clone()))
            .collect();
        entries.sort_by_key(|e| std::cmp::Reverse(e.0));
        entries.truncate(limit);
        entries.into_iter().map(|(_, k, v)| (k, v)).collect()
    }

    pub fn len(&self) -> usize {
        self.map.len()
    }

    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(input: u64, seed: u64) -> CacheKey {
        CacheKey {
            input,
            method: Method::ScalaPart,
            parts: 4,
            ranks: 8,
            seed,
        }
    }

    #[test]
    fn hit_returns_the_stored_arc() {
        let mut c: LruCache<Vec<u32>> = LruCache::new(4);
        let v = Arc::new(vec![1, 2, 3]);
        c.insert(key(1, 0), v.clone());
        let got = c.get(&key(1, 0)).unwrap();
        assert!(
            Arc::ptr_eq(&got, &v),
            "hit must be bit-identical (same allocation)"
        );
        assert!(c.get(&key(2, 0)).is_none());
        assert!(c.get(&key(1, 1)).is_none(), "seed is part of the key");
    }

    #[test]
    fn evicts_least_recently_used() {
        let mut c: LruCache<u32> = LruCache::new(2);
        assert_eq!(c.insert(key(1, 0), Arc::new(10)), None);
        assert_eq!(c.insert(key(2, 0), Arc::new(20)), None);
        c.get(&key(1, 0)); // refresh 1 → 2 is now oldest
        let evicted = c.insert(key(3, 0), Arc::new(30));
        assert_eq!(evicted, Some(key(2, 0)), "eviction is reported");
        assert!(c.get(&key(1, 0)).is_some());
        assert!(c.get(&key(2, 0)).is_none(), "LRU entry evicted");
        assert!(c.get(&key(3, 0)).is_some());
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn reinsert_refreshes_without_growth() {
        let mut c: LruCache<u32> = LruCache::new(2);
        c.insert(key(1, 0), Arc::new(10));
        c.insert(key(1, 0), Arc::new(11));
        assert_eq!(c.len(), 1);
        assert_eq!(*c.get(&key(1, 0)).unwrap(), 11);
        let z: LruCache<u32> = {
            let mut z = LruCache::new(0);
            z.insert(key(1, 0), Arc::new(1));
            z
        };
        assert!(z.is_empty());
    }

    #[test]
    fn dump_returns_hottest_first_without_touching_recency() {
        let mut c: LruCache<u32> = LruCache::new(8);
        c.insert(key(1, 0), Arc::new(1));
        c.insert(key(2, 0), Arc::new(2));
        c.insert(key(3, 0), Arc::new(3));
        c.get(&key(1, 0)); // 1 is now hottest
        let d = c.dump(2);
        assert_eq!(d.len(), 2);
        assert_eq!((d[0].0, *d[0].1), (key(1, 0), 1));
        assert_eq!((d[1].0, *d[1].1), (key(3, 0), 3));
        assert_eq!(c.dump(100).len(), 3, "limit caps, never pads");
        // dump() is read-only: 2 is still the LRU entry.
        c.insert(key(4, 0), Arc::new(4));
        c.insert(key(5, 0), Arc::new(5));
        assert!(c.get(&key(2, 0)).is_some(), "capacity 8: nothing evicted");
    }

    #[test]
    fn distinct_methods_and_parts_are_distinct_entries() {
        let mut c: LruCache<u32> = LruCache::new(8);
        let base = key(7, 3);
        c.insert(base, Arc::new(1));
        c.insert(
            CacheKey {
                method: Method::Rcb,
                ..base
            },
            Arc::new(2),
        );
        c.insert(CacheKey { parts: 8, ..base }, Arc::new(3));
        c.insert(CacheKey { ranks: 16, ..base }, Arc::new(4));
        assert_eq!(c.len(), 4);
    }
}
