//! TCP front end over the in-process [`Service`](crate::service::Service).
//!
//! Zero new dependencies: `std::net` sockets carrying the
//! [`proto`](crate::proto) frame format. The accept loop runs on its own
//! thread with a non-blocking listener; each connection gets a handler
//! thread that decodes frames, drives the service, and writes one
//! response frame per request. Malformed frames get an `error` response
//! and the connection keeps going — a confused client can't wedge the
//! server.
//!
//! Shutdown ordering matters: a `shutdown` request first stops the accept
//! loop, then drains the service (queued jobs complete), and only then
//! does [`Server::wait`] return. In-flight connections finish their
//! current request; submits racing the drain get a `shutting_down`
//! rejection rather than a dropped socket.

use crate::metrics::ServiceMetrics;
use crate::proto::{
    append_field, encode_cache_entries, encode_error, encode_metrics, encode_outcome, encode_pong,
    encode_rejection, read_frame, write_frame, Request, WireCacheEntry, MAX_FRAME,
};
use crate::service::{JobSpec, ServeConfig, Service};
use crate::session::{SessionConfig, SessionManager};
use std::io::{Read, Write as _};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

pub struct Server {
    service: Service,
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: Mutex<Option<JoinHandle<()>>>,
    /// Clones of accepted connection streams keyed by connection id, so
    /// [`Server::kill`] can sever them abruptly (crash injection for the
    /// failover tests). Each handler removes its own entry on exit —
    /// holding a clone keeps the socket (and its fd) open even after the
    /// peer closes, so the registry must never outlive the handler.
    conns: Mutex<Vec<(u64, TcpStream)>>,
    /// Streaming-session state (dynamic graphs), shared by all handlers.
    sessions: SessionManager,
}

impl Server {
    /// Bind `addr` (e.g. `"127.0.0.1:0"` for an ephemeral test port) and
    /// start accepting.
    pub fn bind(addr: &str, cfg: ServeConfig) -> std::io::Result<Arc<Server>> {
        Server::bind_with_metrics(addr, cfg, ServiceMetrics::new())
    }

    /// [`bind`](Self::bind) against an existing metric registry — a shard
    /// restarting on the same scrape endpoint keeps cumulative counters
    /// monotone while run-scoped gauges (queue-depth high water) reset.
    pub fn bind_with_metrics(
        addr: &str,
        cfg: ServeConfig,
        metrics: ServiceMetrics,
    ) -> std::io::Result<Arc<Server>> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let sessions = SessionManager::new(SessionConfig::from_serve(&cfg), metrics.clone());
        let server = Arc::new(Server {
            service: Service::start_with_metrics(cfg, metrics),
            addr,
            stop: Arc::new(AtomicBool::new(false)),
            accept_thread: Mutex::new(None),
            conns: Mutex::new(Vec::new()),
            sessions,
        });
        let accept = {
            let server = server.clone();
            std::thread::spawn(move || accept_loop(server, listener))
        };
        *server.accept_thread.lock().unwrap() = Some(accept);
        Ok(server)
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The underlying in-process service (shared with the TCP front end).
    pub fn service(&self) -> &Service {
        &self.service
    }

    /// The streaming-session manager (tests and stats).
    pub fn sessions(&self) -> &SessionManager {
        &self.sessions
    }

    /// Request shutdown: stop accepting, drain the queue, join workers.
    pub fn shutdown(&self) {
        self.stop.store(true, Ordering::SeqCst);
        self.service.shutdown();
    }

    /// SIGKILL-equivalent crash injection: stop accepting and sever every
    /// open connection immediately — no drain, no goodbye frames, no
    /// waiting on in-flight compute. Peers observe an abrupt EOF/reset
    /// exactly as if the shard process died, and `kill` returns without
    /// joining handler threads (a handler blocked in `submit_wait` on a
    /// long job would otherwise stall the "crash" for the job's full
    /// duration). The in-process worker pool is left to be reaped by a
    /// later `service().shutdown()` + [`Server::wait`] (a real kill would
    /// take it too, but test processes must not leak running threads
    /// unjoined).
    pub fn kill(&self) {
        self.stop.store(true, Ordering::SeqCst);
        for (_, conn) in self.conns.lock().unwrap().drain(..) {
            let _ = conn.shutdown(Shutdown::Both);
        }
    }

    /// Connections currently tracked for [`Server::kill`] — one entry per
    /// live handler. Exposed so tests can pin that closed connections are
    /// pruned (a leak here is an fd leak).
    pub fn open_connections(&self) -> usize {
        self.conns.lock().unwrap().len()
    }

    /// Block until the accept loop has exited (after [`Server::shutdown`],
    /// from any thread or a `shutdown` frame).
    pub fn wait(&self) {
        let handle = self.accept_thread.lock().unwrap().take();
        if let Some(h) = handle {
            let _ = h.join();
        }
    }
}

fn accept_loop(server: Arc<Server>, listener: TcpListener) {
    let mut handlers: Vec<JoinHandle<()>> = Vec::new();
    let mut next_conn_id: u64 = 0;
    while !server.stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                let conn_id = next_conn_id;
                next_conn_id += 1;
                if let Ok(clone) = stream.try_clone() {
                    server.conns.lock().unwrap().push((conn_id, clone));
                }
                let server = server.clone();
                handlers.push(std::thread::spawn(move || {
                    let _ = handle_connection(server.clone(), stream);
                    // Drop the registry clone with the handler: keeping it
                    // would hold the socket open (CLOSE_WAIT) and leak one
                    // fd per connection ever accepted.
                    server
                        .conns
                        .lock()
                        .unwrap()
                        .retain(|(id, _)| *id != conn_id);
                }));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => {
                // Transient accept failures (EMFILE/ENFILE under fd
                // pressure, ECONNABORTED) must not kill the accept loop —
                // a shard that silently stops serving is worse than one
                // that briefly backs off. Only the stop flag ends accept.
                std::thread::sleep(Duration::from_millis(20));
            }
        }
        handlers.retain(|h| !h.is_finished());
    }
    for h in handlers {
        let _ = h.join();
    }
}

/// `read_frame`, but interruptible: the stream has a short read timeout,
/// and between frames (never mid-frame) a raised stop flag ends the
/// connection. Without this, an idle keep-alive client would pin its
/// handler thread in a blocking `read` forever and shutdown could never
/// join it.
pub(crate) fn read_frame_stoppable(
    stream: &mut TcpStream,
    stop: &AtomicBool,
) -> std::io::Result<Option<Vec<u8>>> {
    let mut header = [0u8; 4];
    if !read_full(stream, &mut header, stop, true)? {
        return Ok(None); // clean EOF or stop between frames
    }
    let len = u32::from_be_bytes(header);
    if len > MAX_FRAME {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("frame of {len} bytes exceeds the {MAX_FRAME}-byte limit"),
        ));
    }
    let mut buf = vec![0u8; len as usize];
    if !read_full(stream, &mut buf, stop, false)? {
        return Err(std::io::Error::new(
            std::io::ErrorKind::UnexpectedEof,
            "connection closed mid-frame",
        ));
    }
    Ok(Some(buf))
}

/// Fill `buf`, tolerating read timeouts. Returns `Ok(false)` when the
/// peer closed (or stop was raised) cleanly at offset 0 and
/// `eof_ok_at_start` allows it. A frame already in progress is given a
/// bounded grace period after stop before the connection is abandoned.
fn read_full(
    stream: &mut TcpStream,
    buf: &mut [u8],
    stop: &AtomicBool,
    eof_ok_at_start: bool,
) -> std::io::Result<bool> {
    let mut off = 0;
    let mut stopped_polls = 0u32;
    while off < buf.len() {
        match stream.read(&mut buf[off..]) {
            Ok(0) => {
                return if off == 0 && eof_ok_at_start {
                    Ok(false)
                } else {
                    Err(std::io::Error::new(
                        std::io::ErrorKind::UnexpectedEof,
                        "connection closed mid-frame",
                    ))
                };
            }
            Ok(n) => off += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                if stop.load(Ordering::SeqCst) {
                    if off == 0 {
                        return Ok(false);
                    }
                    // Mid-frame at shutdown: allow ~2 s to finish.
                    stopped_polls += 1;
                    if stopped_polls > 40 {
                        return Err(std::io::Error::new(
                            std::io::ErrorKind::TimedOut,
                            "peer stalled mid-frame during shutdown",
                        ));
                    }
                }
            }
            Err(e) => return Err(e),
        }
    }
    Ok(true)
}

fn handle_connection(server: Arc<Server>, mut stream: TcpStream) -> std::io::Result<()> {
    stream.set_nodelay(true).ok();
    stream
        .set_read_timeout(Some(Duration::from_millis(50)))
        .ok();
    loop {
        let payload = match read_frame_stoppable(&mut stream, &server.stop) {
            Ok(Some(p)) => p,
            Ok(None) => return Ok(()), // clean close or drain
            Err(e) if e.kind() == std::io::ErrorKind::InvalidData => {
                // Oversized/truncated frame: report and drop the
                // connection — we can no longer find a frame boundary.
                let _ = write_frame(&mut stream, encode_error(&e.to_string()).as_bytes());
                return Ok(());
            }
            Err(e) => return Err(e),
        };
        let response = match Request::decode(&payload) {
            Err(msg) => encode_error(&msg),
            Ok(Request::Stats) => {
                format!(
                    "{{\"type\": \"stats\", \"stats\": {}}}",
                    server.service.stats().to_json()
                )
            }
            Ok(Request::Metrics) => encode_metrics(&server.service.prometheus()),
            Ok(Request::Shutdown) => {
                write_frame(&mut stream, b"{\"type\": \"ok\", \"draining\": true}")?;
                stream.flush()?;
                server.shutdown();
                return Ok(());
            }
            Ok(Request::Ping) => encode_pong(),
            Ok(Request::CacheDump { limit }) => {
                let entries: Vec<WireCacheEntry> = server
                    .service
                    .cache_dump(limit)
                    .into_iter()
                    .map(|(key, out)| WireCacheEntry {
                        key,
                        sim_time: out.sim_time,
                        result_json: out.result_json.clone(),
                    })
                    .collect();
                encode_cache_entries("cache", &entries)
            }
            Ok(Request::CacheLoad { entries }) => {
                let loaded = entries
                    .into_iter()
                    .filter(|e| server.service.cache_load(e.key, e.sim_time, &e.result_json))
                    .count();
                format!("{{\"type\": \"ok\", \"loaded\": {loaded}}}")
            }
            Ok(Request::Submit {
                graph,
                coords,
                method,
                parts,
                seed,
                deadline_ms,
                route_tag,
            }) => {
                let spec = JobSpec {
                    graph,
                    coords,
                    method,
                    parts,
                    seed,
                    deadline_ms,
                };
                let body = match server.service.submit_wait(spec) {
                    Ok(outcome) => encode_outcome(&outcome),
                    Err(reject) => encode_rejection(&reject),
                };
                // Echo the router's correlation tag so it can pin this
                // response to the job it forwarded — appended after the
                // payload so the payload bytes stay identical to a
                // directly-served response.
                match route_tag {
                    Some(tag) => append_field(&body, "route_tag", &tag.to_string()),
                    None => body,
                }
            }
            Ok(Request::SessionOpen {
                session,
                graph,
                coords,
                seed,
            }) => server.sessions.open(&session, graph, coords, seed),
            Ok(Request::SessionDelta { session, deltas }) => {
                server.sessions.delta(&session, &deltas)
            }
            Ok(Request::SessionRepartition { session }) => server.sessions.repartition(&session),
            Ok(Request::SessionClose { session }) => server.sessions.close(&session),
        };
        write_frame(&mut stream, response.as_bytes())?;
    }
}

/// A minimal blocking client for the frame protocol.
pub struct Client {
    stream: TcpStream,
}

impl Client {
    pub fn connect(addr: &SocketAddr) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        Ok(Client { stream })
    }

    /// Send one raw JSON request and return the raw JSON response.
    pub fn request(&mut self, json: &str) -> std::io::Result<String> {
        write_frame(&mut self.stream, json.as_bytes())?;
        match read_frame(&mut self.stream)? {
            Some(payload) => String::from_utf8(payload).map_err(|_| {
                std::io::Error::new(std::io::ErrorKind::InvalidData, "response is not UTF-8")
            }),
            None => Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            )),
        }
    }
}
