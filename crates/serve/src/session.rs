//! Streaming sessions: the dynamic-graph workload over the frame
//! protocol (`session_open` / `session_delta` / `session_repartition` /
//! `session_close`, see [`crate::proto`]).
//!
//! A session holds an [`IncrementalRepartitioner`] — an immutable base
//! CSR under a delta overlay plus a warm partition — and two
//! fingerprints: the **base fingerprint** (input fingerprint of the
//! opened graph, folded with the session seed) fixed at open, and the
//! **chain fingerprint**, extended by every accepted delta and marked at
//! every repartition. Together they name the session's logical state
//! exactly, which yields the determinism contract the router's failover
//! relies on (DESIGN.md "Dynamic graphs"):
//!
//! > A session response's bytes are a pure function of
//! > `(base fingerprint, chain fingerprint)` — never of the shard that
//! > served it, the wall clock, or cache state.
//!
//! Consequently `session_delta` / `session_repartition` responses carry
//! no session name, no host times, and no cache-hit flag; replaying a
//! session's frames on a different shard reproduces every response
//! byte-for-byte. The **result cache** is keyed by that same pair: a hit
//! serves the cached bytes *and* adopts the cached partition into the
//! session (repartitioning is deterministic, so the adopted labels are
//! bit-identical to what a fresh computation would produce).
//!
//! Quotas bound a hostile or runaway client: a maximum number of open
//! sessions, a per-session lifetime delta budget, and an idle TTL
//! enforced lazily at every session operation (no sweeper thread).

use crate::metrics::ServiceMetrics;
use crate::proto::encode_typed_error;
use crate::service::ServeConfig;
use scalapart::stream::{
    chain_extend, chain_mark, DeltaOverlay, GraphDelta, IncrementalRepartitioner, StepReport,
    StreamConfig,
};
use sp_geometry::Point2;
use sp_graph::Graph;
use sp_trace::fnv::Fingerprint;
use sp_trace::json::{escape, num};
use std::collections::HashMap;
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Session-subsystem knobs, split out of [`ServeConfig`].
#[derive(Clone, Debug)]
pub struct SessionConfig {
    pub max_sessions: usize,
    pub max_deltas: u64,
    pub idle_ms: u64,
    pub cache_capacity: usize,
}

impl SessionConfig {
    pub fn from_serve(cfg: &ServeConfig) -> SessionConfig {
        SessionConfig {
            max_sessions: cfg.max_sessions.max(1),
            max_deltas: cfg.session_max_deltas,
            idle_ms: cfg.session_idle_ms.max(1),
            cache_capacity: cfg.session_cache_capacity,
        }
    }
}

/// One cached repartition step: the response bytes served and the side
/// assignment needed to fast-forward a session past the step on a hit.
struct CachedStep {
    response: String,
    sides: Vec<u8>,
}

/// A tiny LRU over `(base_fp, chain_fp) → CachedStep`. Linear scan —
/// capacities are tens of entries, and the arm is only taken on
/// repartition requests, which cost orders of magnitude more than the
/// scan.
struct StepCache {
    capacity: usize,
    /// Most recently used first.
    entries: Vec<((u64, u64), Arc<CachedStep>)>,
}

impl StepCache {
    fn get(&mut self, key: (u64, u64)) -> Option<Arc<CachedStep>> {
        let i = self.entries.iter().position(|(k, _)| *k == key)?;
        let hit = self.entries.remove(i);
        let v = hit.1.clone();
        self.entries.insert(0, hit);
        Some(v)
    }

    fn put(&mut self, key: (u64, u64), step: CachedStep) {
        if self.capacity == 0 {
            return;
        }
        self.entries.retain(|(k, _)| *k != key);
        self.entries.insert(0, (key, Arc::new(step)));
        self.entries.truncate(self.capacity);
    }
}

struct Session {
    rp: IncrementalRepartitioner,
    base_fp: u64,
    chain_fp: u64,
    deltas_total: u64,
    repartitions: u64,
    last_used: Instant,
}

struct SessState {
    sessions: HashMap<String, Session>,
    cache: StepCache,
}

/// Owns every open session of a server plus the shared step cache.
/// Shared by all connection handlers; every public method takes `&self`.
pub struct SessionManager {
    cfg: SessionConfig,
    state: Mutex<SessState>,
    metrics: ServiceMetrics,
}

impl SessionManager {
    pub fn new(cfg: SessionConfig, metrics: ServiceMetrics) -> SessionManager {
        SessionManager {
            state: Mutex::new(SessState {
                sessions: HashMap::new(),
                cache: StepCache {
                    capacity: cfg.cache_capacity,
                    entries: Vec::new(),
                },
            }),
            cfg,
            metrics,
        }
    }

    /// Sessions currently open (tests and stats).
    pub fn active(&self) -> usize {
        self.state.lock().unwrap().sessions.len()
    }

    /// Drop sessions idle past the TTL. Called at the top of every
    /// session operation — lazy eviction needs no sweeper thread, and a
    /// server with no session traffic holds no session state anyway.
    fn evict_idle(&self, st: &mut SessState) {
        let ttl = std::time::Duration::from_millis(self.cfg.idle_ms);
        let before = st.sessions.len();
        st.sessions.retain(|_, s| s.last_used.elapsed() <= ttl);
        let evicted = before - st.sessions.len();
        if evicted > 0 {
            self.metrics.session_evictions.add(evicted as u64);
            self.metrics.sessions_active.set(st.sessions.len() as i64);
        }
    }

    /// `session_open`: build the overlay, bootstrap a full partition, and
    /// register the session under `name`.
    pub fn open(
        &self,
        name: &str,
        graph: Arc<Graph>,
        coords: Option<Arc<Vec<Point2>>>,
        seed: u64,
    ) -> String {
        let mut st = self.state.lock().unwrap();
        self.evict_idle(&mut st);
        if st.sessions.contains_key(name) {
            return encode_typed_error(
                "session_exists",
                &format!("session {name:?} is already open"),
            );
        }
        if st.sessions.len() >= self.cfg.max_sessions {
            return encode_typed_error(
                "session_quota",
                &format!(
                    "session limit reached ({} open); close one first",
                    st.sessions.len()
                ),
            );
        }
        let input_fp =
            crate::fingerprint::fingerprint_input(&graph, coords.as_ref().map(|c| c.as_slice()));
        let mut f = Fingerprint::new();
        f.u64(input_fp);
        f.u64(seed);
        let base_fp = f.finish();

        let overlay = match DeltaOverlay::new(graph, coords.map(|c| (*c).clone())) {
            Ok(o) => o,
            Err(e) => return encode_typed_error("bad_graph", &e.to_string()),
        };
        let stream_cfg = StreamConfig {
            seed,
            ..StreamConfig::default()
        };
        let (rp, boot) = IncrementalRepartitioner::new(overlay, stream_cfg);
        let chain_fp = base_fp;
        let body = format!(
            concat!(
                "{{\"type\": \"session\", \"status\": \"open\", \"session\": \"{}\", ",
                "\"n\": {}, \"m\": {}, \"base_fp\": \"{:016x}\", \"chain_fp\": \"{:016x}\", ",
                "\"cut\": {}, \"imbalance\": {}, \"partition_fp\": \"{:016x}\"}}"
            ),
            escape(name),
            rp.overlay().n(),
            rp.overlay().m(),
            base_fp,
            chain_fp,
            num(boot.cut_after),
            num(boot.imbalance),
            boot.partition_fp,
        );
        st.sessions.insert(
            name.to_string(),
            Session {
                rp,
                base_fp,
                chain_fp,
                deltas_total: 0,
                repartitions: 0,
                last_used: Instant::now(),
            },
        );
        self.metrics.sessions_active.set(st.sessions.len() as i64);
        body
    }

    /// `session_delta`: apply a batch atomically and extend the chain
    /// fingerprint. A rejected batch (validity or quota) leaves both the
    /// overlay and the chain untouched.
    pub fn delta(&self, name: &str, batch: &[GraphDelta]) -> String {
        let mut st = self.state.lock().unwrap();
        self.evict_idle(&mut st);
        let Some(s) = st.sessions.get_mut(name) else {
            return no_session(name);
        };
        s.last_used = Instant::now();
        if s.deltas_total + batch.len() as u64 > self.cfg.max_deltas {
            return encode_typed_error(
                "delta_quota",
                &format!(
                    "session delta budget exceeded ({} applied + {} submitted > {})",
                    s.deltas_total,
                    batch.len(),
                    self.cfg.max_deltas
                ),
            );
        }
        if let Err(e) = s.rp.apply(batch) {
            return encode_typed_error("bad_delta", &e.to_string());
        }
        for d in batch {
            s.chain_fp = chain_extend(s.chain_fp, d);
        }
        s.deltas_total += batch.len() as u64;
        self.metrics.session_deltas.add(batch.len() as u64);
        format!(
            concat!(
                "{{\"type\": \"session\", \"status\": \"delta\", \"applied\": {}, ",
                "\"deltas_total\": {}, \"pending\": {}, \"chain_fp\": \"{:016x}\"}}"
            ),
            batch.len(),
            s.deltas_total,
            s.rp.pending_touched(),
            s.chain_fp,
        )
    }

    /// `session_repartition`: advance the chain past a repartition marker
    /// and either serve the step from the result cache (adopting its
    /// partition) or compute it and cache the outcome.
    pub fn repartition(&self, name: &str) -> String {
        let t0 = Instant::now();
        let mut st = self.state.lock().unwrap();
        self.evict_idle(&mut st);
        let Some(s) = st.sessions.get_mut(name) else {
            return no_session(name);
        };
        s.last_used = Instant::now();
        let next_chain = chain_mark(s.chain_fp, 1);
        let key = (s.base_fp, next_chain);

        if let Some(hit) = st.cache.get(key) {
            // Reborrow: `get` needed the cache half of the state.
            let s = st.sessions.get_mut(name).expect("session still present");
            if s.rp.adopt(hit.sides.clone()).is_ok() {
                s.chain_fp = next_chain;
                s.repartitions += 1;
                self.metrics.session_cache_hits.inc();
                self.metrics
                    .session_repartition_ms
                    .observe(t0.elapsed().as_secs_f64() * 1e3);
                return hit.response.clone();
            }
            // An adopt mismatch means the cached entry cannot belong to
            // this state after all (fingerprint collision); fall through
            // and compute.
        }

        let s = st.sessions.get_mut(name).expect("session still present");
        let report = s.rp.repartition();
        s.chain_fp = next_chain;
        s.repartitions += 1;
        let body = encode_step(&report, next_chain);
        let sides = s.rp.partition().sides().to_vec();
        st.cache.put(
            key,
            CachedStep {
                response: body.clone(),
                sides,
            },
        );
        self.metrics
            .session_repartition_ms
            .observe(t0.elapsed().as_secs_f64() * 1e3);
        body
    }

    /// `session_close`: drop the session and report its lifetime totals.
    pub fn close(&self, name: &str) -> String {
        let mut st = self.state.lock().unwrap();
        self.evict_idle(&mut st);
        let Some(s) = st.sessions.remove(name) else {
            return no_session(name);
        };
        self.metrics.sessions_active.set(st.sessions.len() as i64);
        format!(
            concat!(
                "{{\"type\": \"session\", \"status\": \"closed\", \"session\": \"{}\", ",
                "\"deltas_total\": {}, \"repartitions\": {}, \"chain_fp\": \"{:016x}\"}}"
            ),
            escape(name),
            s.deltas_total,
            s.repartitions,
            s.chain_fp,
        )
    }
}

fn no_session(name: &str) -> String {
    encode_typed_error("no_session", &format!("no open session named {name:?}"))
}

/// Encode a repartition step. **Deterministic fields only**: the step
/// index, mode, dirty-region accounting, cut/balance/migration outcome,
/// simulated time, and fingerprints — never host wall time, cache-hit
/// flags, or the session name. These bytes are cached and replayed
/// across shards, so anything nondeterministic here breaks the failover
/// byte-identity contract.
fn encode_step(r: &StepReport, chain_fp: u64) -> String {
    format!(
        concat!(
            "{{\"type\": \"session\", \"status\": \"repartition\", \"step\": {}, ",
            "\"mode\": \"{}\", \"touched\": {}, \"dirty\": {}, \"cut_before\": {}, ",
            "\"cut_after\": {}, \"migration_volume\": {}, \"imbalance\": {}, ",
            "\"fm_passes\": {}, \"sim_time\": {}, \"chain_fp\": \"{:016x}\", ",
            "\"partition_fp\": \"{:016x}\"}}"
        ),
        r.step,
        r.mode.as_str(),
        r.touched,
        r.dirty,
        num(r.cut_before),
        num(r.cut_after),
        r.migration_volume,
        num(r.imbalance),
        r.fm_passes,
        num(r.sim_time),
        chain_fp,
        r.partition_fp,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::Value;

    fn mgr(cfg: SessionConfig) -> SessionManager {
        SessionManager::new(cfg, ServiceMetrics::new())
    }

    fn small_cfg() -> SessionConfig {
        SessionConfig {
            max_sessions: 2,
            max_deltas: 16,
            idle_ms: 60_000,
            cache_capacity: 8,
        }
    }

    fn grid(n: usize) -> (Arc<Graph>, Option<Arc<Vec<Point2>>>) {
        (
            Arc::new(sp_graph::gen::grid_2d(n, n)),
            Some(Arc::new(sp_graph::gen::grid_2d_coords(n, n))),
        )
    }

    #[test]
    fn open_delta_repartition_close_round_trip() {
        let m = mgr(small_cfg());
        let (g, c) = grid(8);
        let open = m.open("a", g, c, 1);
        let v = Value::parse(&open).unwrap();
        assert_eq!(v.get("status").and_then(Value::as_str), Some("open"));
        assert_eq!(m.active(), 1);
        assert_eq!(m.metrics.sessions_active.get(), 1);

        let d = m.delta(
            "a",
            &[GraphDelta::ShiftCoord {
                v: 3,
                dx: 0.1,
                dy: 0.0,
            }],
        );
        let v = Value::parse(&d).unwrap();
        assert_eq!(v.get("applied").and_then(Value::as_u64), Some(1));
        assert_eq!(m.metrics.session_deltas.get(), 1);

        let r = m.repartition("a");
        let v = Value::parse(&r).unwrap();
        assert_eq!(v.get("status").and_then(Value::as_str), Some("repartition"));
        assert!(v.get("partition_fp").is_some());

        let c = m.close("a");
        let v = Value::parse(&c).unwrap();
        assert_eq!(v.get("repartitions").and_then(Value::as_u64), Some(1));
        assert_eq!(m.active(), 0);
        assert_eq!(m.metrics.sessions_active.get(), 0);
    }

    #[test]
    fn responses_are_pure_functions_of_base_and_chain() {
        // Two sessions with different names but identical base + deltas:
        // every delta/repartition response must be byte-identical (the
        // name never appears), and the second repartition must be served
        // from the step cache with the same bytes.
        let m = mgr(small_cfg());
        let (g, c) = grid(8);
        m.open("first", g.clone(), c.clone(), 7);
        m.open("second", g, c, 7);
        let batch = [GraphDelta::SetVwgt { v: 11, w: 2.5 }];
        assert_eq!(m.delta("first", &batch), m.delta("second", &batch));
        let r1 = m.repartition("first");
        let hits_before = m.metrics.session_cache_hits.get();
        let r2 = m.repartition("second");
        assert_eq!(r1, r2, "cache replay must be byte-identical");
        assert_eq!(m.metrics.session_cache_hits.get(), hits_before + 1);
        // And the adopted partition leaves both sessions in lockstep:
        // further steps agree too.
        assert_eq!(
            m.delta("first", &batch[..0]),
            m.delta("second", &batch[..0])
        );
        assert_eq!(m.repartition("first"), m.repartition("second"));
    }

    #[test]
    fn quotas_and_unknown_sessions_are_typed_errors() {
        let m = mgr(SessionConfig {
            max_sessions: 1,
            max_deltas: 2,
            ..small_cfg()
        });
        let (g, c) = grid(6);
        m.open("only", g.clone(), c.clone(), 1);
        let second = m.open("nope", g, c, 1);
        assert!(second.contains("session_quota"), "{second}");

        let too_many: Vec<GraphDelta> = (0..3).map(|v| GraphDelta::SetVwgt { v, w: 2.0 }).collect();
        let r = m.delta("only", &too_many);
        assert!(r.contains("delta_quota"), "{r}");
        assert!(m.delta("ghost", &[]).contains("no_session"));
        assert!(m.repartition("ghost").contains("no_session"));
        assert!(m.close("ghost").contains("no_session"));
    }

    #[test]
    fn rejected_batch_leaves_chain_untouched() {
        let m = mgr(small_cfg());
        let (g, c) = grid(6);
        m.open("s", g, c, 1);
        let before = m.repartition("s");
        // A batch whose second delta is invalid must roll back entirely.
        let bad = [
            GraphDelta::SetVwgt { v: 1, w: 2.0 },
            GraphDelta::RemoveEdge { u: 0, v: 35 },
        ];
        let r = m.delta("s", &bad);
        assert!(r.contains("bad_delta"), "{r}");
        // The chain did not advance: the next repartition marks from the
        // same chain state as `before` did, differing only by the marker.
        let v0 = Value::parse(&before).unwrap();
        let r2 = m.repartition("s");
        let v2 = Value::parse(&r2).unwrap();
        assert_eq!(
            v0.get("step").and_then(Value::as_u64).map(|s| s + 1),
            v2.get("step").and_then(Value::as_u64)
        );
    }

    #[test]
    fn idle_sessions_are_evicted_lazily() {
        let m = mgr(SessionConfig {
            idle_ms: 1,
            ..small_cfg()
        });
        let (g, c) = grid(6);
        m.open("stale", g.clone(), c.clone(), 1);
        assert_eq!(m.active(), 1);
        std::thread::sleep(std::time::Duration::from_millis(20));
        // Any session operation sweeps; the stale session is gone and the
        // name is free again.
        let r = m.repartition("stale");
        assert!(r.contains("no_session"), "{r}");
        assert_eq!(m.metrics.session_evictions.get(), 1);
        assert_eq!(m.metrics.sessions_active.get(), 0);
        let reopened = m.open("stale", g, c, 1);
        assert!(reopened.contains("\"status\": \"open\""), "{reopened}");
    }
}
