//! sp-serve: a long-running partitioning service over the ScalaPart
//! pipeline.
//!
//! The paper's partitioner is a batch algorithm; this crate wraps it in a
//! daemon so repeated partitioning requests — the "partition the same
//! mesh at many seeds / part counts" workload of a simulation campaign —
//! amortise process startup and share a result cache. Two layers:
//!
//! - [`service::Service`] — the in-process core: bounded job queue,
//!   worker pool, LRU result cache keyed by input fingerprint, per-job
//!   deadlines with cooperative cancellation, explicit backpressure, and
//!   graceful drain. Usable directly as a library (the loopback tests and
//!   any embedding binary drive this API).
//! - [`net::Server`]/[`net::Client`] — a TCP front end speaking
//!   length-prefixed JSON frames ([`proto`]), built purely on `std::net`.
//! - [`router::Router`]/[`router::RouterServer`] — distributed serving: a
//!   coordinator that consistent-hashes jobs ([`ring`]) across backend
//!   shards, with health checks, mid-stream failover replay, and cache
//!   warming on shard join (`sp-serve route`).
//!
//! Everything is dependency-free by design, like the rest of the
//! workspace: the wire format is parsed by the hand-rolled strict
//! [`json`] parser and emitted through sp-trace's JSON helpers, and cache
//! fingerprints reuse sp-trace's platform-stable FNV-1a.
//!
//! Determinism contract: a job's result depends only on
//! `(input fingerprint, method, parts, simulated ranks, seed)` — the
//! cache key. Deadlines and cancellation never alter a completed result;
//! they only decide whether a result is produced at all (see DESIGN.md).

pub mod cache;
pub mod fingerprint;
pub mod json;
pub mod metrics;
pub mod net;
pub mod proto;
pub mod ring;
pub mod router;
pub mod service;
pub mod session;

pub use cache::{CacheKey, LruCache};
pub use fingerprint::{fingerprint_graph, fingerprint_input};
pub use metrics::ServiceMetrics;
pub use net::{Client, Server};
pub use ring::Ring;
pub use router::{Router, RouterConfig, RouterServer};
pub use service::{
    JobOutcome, JobSpec, PartitionOutput, ServeConfig, Service, ServiceStats, SubmitError, Ticket,
};
pub use session::{SessionConfig, SessionManager};
