//! Request fingerprinting for the result cache.
//!
//! The cache key must distinguish any two inputs the partitioner could
//! answer differently, so the graph fingerprint covers the *entire* CSR
//! content — structure (`xadj`, `adjncy`), edge-weight bits, vertex-weight
//! bits — plus the coordinate bits when the request supplies coordinates
//! (the geometric methods consume them). Two graphs that differ only in
//! edge weights therefore hash apart. Built on sp-trace's FNV-1a
//! [`Fingerprint`] (the same accumulator sp-verify uses), which is
//! hand-rolled and platform-stable, so cache keys (and the `fingerprint`
//! field echoed in responses) are reproducible across hosts.

use sp_geometry::Point2;
use sp_graph::Graph;
use sp_trace::fnv::Fingerprint;

/// Fingerprint a graph's full CSR content.
pub fn fingerprint_graph(g: &Graph) -> u64 {
    let mut fp = Fingerprint::new();
    fp.u64(g.n() as u64);
    for &x in g.xadj() {
        fp.u64(x as u64);
    }
    for &u in g.adjncy() {
        fp.u64(u as u64);
    }
    for &w in g.ewgts() {
        fp.f64_bits(w);
    }
    for &w in g.vwgts() {
        fp.f64_bits(w);
    }
    fp.finish()
}

/// Fingerprint a graph together with optional request coordinates. A
/// request without coordinates hashes differently from one with them —
/// the coordinate-free path embeds the graph itself, which changes the
/// result for every geometric method.
pub fn fingerprint_input(g: &Graph, coords: Option<&[Point2]>) -> u64 {
    let mut fp = Fingerprint::new();
    fp.u64(fingerprint_graph(g));
    match coords {
        None => fp.byte(0),
        Some(c) => {
            fp.byte(1);
            for p in c {
                fp.f64_bits(p.x);
                fp.f64_bits(p.y);
            }
        }
    }
    fp.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sp_graph::GraphBuilder;

    fn path_graph(weights: &[f64]) -> Graph {
        let mut b = GraphBuilder::new(weights.len() + 1);
        for (i, &w) in weights.iter().enumerate() {
            b.add_edge(i as u32, i as u32 + 1, w);
        }
        b.build()
    }

    #[test]
    fn identical_graphs_fingerprint_identically() {
        let a = path_graph(&[1.0, 2.0, 3.0]);
        let b = path_graph(&[1.0, 2.0, 3.0]);
        assert_eq!(fingerprint_graph(&a), fingerprint_graph(&b));
    }

    #[test]
    fn edge_weights_change_the_fingerprint() {
        // Same topology, different edge weights → different key. This is
        // the cache-correctness property: the partitioner can answer the
        // two differently, so they must occupy distinct cache entries.
        let a = path_graph(&[1.0, 1.0, 1.0]);
        let b = path_graph(&[1.0, 2.0, 1.0]);
        assert_eq!(a.adjncy(), b.adjncy());
        assert_eq!(a.xadj(), b.xadj());
        assert_ne!(fingerprint_graph(&a), fingerprint_graph(&b));
    }

    #[test]
    fn vertex_weights_and_coords_change_the_fingerprint() {
        let a = path_graph(&[1.0, 1.0]);
        let mut bb = GraphBuilder::new(3);
        bb.add_edge(0, 1, 1.0);
        bb.add_edge(1, 2, 1.0);
        bb.set_vwgt(1, 5.0);
        let b = bb.build();
        assert_ne!(fingerprint_graph(&a), fingerprint_graph(&b));

        let coords: Vec<Point2> = (0..3).map(|i| Point2::new(i as f64, 0.0)).collect();
        let plain = fingerprint_input(&a, None);
        let with = fingerprint_input(&a, Some(&coords));
        assert_ne!(plain, with);
        let mut moved = coords.clone();
        moved[2].y = 1.0;
        assert_ne!(with, fingerprint_input(&a, Some(&moved)));
    }
}
