//! Distributed serving: a coordinator that consistent-hashes jobs across
//! backend shards over the framed-JSON protocol.
//!
//! The router owns no partitioning code. It decodes each submit just far
//! enough to compute a **routing key** — a fingerprint of the job's cache
//! key `(input fp, method, parts, seed)` — places the key on the
//! consistent-hash [`Ring`](crate::ring::Ring) of *alive* shards, and
//! forwards the client's original frame bytes with one injected field
//! (`route_tag`, a correlation tag the shard echoes back). The response,
//! minus the echoed tag, is relayed verbatim.
//!
//! Determinism is the contract that makes all of this safe (DESIGN.md
//! "Distributed serving"): a shard's response bytes are a pure function of
//! the job's cache key, so **hash→shard is placement, never semantics**.
//! Consequences the router exploits:
//!
//! - **Failover replay**: when a forward fails mid-stream, the shard is
//!   marked dead and the *same* frame is replayed to the next owner on the
//!   survivor ring. The client cannot distinguish the replayed response
//!   from the original — they are bit-identical by construction.
//! - **Cache warming**: on shard join, hot cache entries stream from
//!   survivors to the joiner byte-exactly, so a post-join cache hit
//!   replays the same bytes the donor would have served.
//!
//! Health checks ping shards in the background; a dead shard's keyspace
//! re-hashes to survivors (only its keys move — the ring property), and a
//! recovered shard is warmed before taking traffic again.

use crate::json::Value;
use crate::proto::{
    append_field, encode_cache_entries, encode_metrics, encode_pong, encode_typed_error,
    read_frame, write_frame, Request, WireCacheEntry, MAX_FRAME,
};
use crate::ring::{Ring, DEFAULT_VNODES};
use scalapart::obs::{Counter, Gauge, Registry};
use std::collections::HashMap;
use std::io::Write as _;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Router tuning knobs.
#[derive(Clone, Debug)]
pub struct RouterConfig {
    /// Virtual nodes per shard on the hash ring.
    pub vnodes: usize,
    /// Background health-probe period. `0` disables the probe thread
    /// (tests drive failure detection through the forward path instead).
    pub health_interval_ms: u64,
    /// Per-attempt socket timeout for forwarded requests. Generous: a
    /// shard legitimately computes for seconds on large jobs.
    pub forward_timeout_ms: u64,
    /// Cache entries streamed per survivor when warming a joining shard.
    pub warm_limit: usize,
}

impl Default for RouterConfig {
    fn default() -> Self {
        RouterConfig {
            vnodes: DEFAULT_VNODES,
            health_interval_ms: 500,
            forward_timeout_ms: 30_000,
            warm_limit: 32,
        }
    }
}

struct ShardState {
    name: String,
    addr: SocketAddr,
    up: bool,
    up_gauge: Arc<Gauge>,
    forwards: Arc<Counter>,
}

/// The shard list plus the consistent-hash ring over its *alive* members.
/// The ring is rebuilt only on membership transitions (`mark_down`,
/// `rejoin`) — the per-request owner lookup is a pure O(log points)
/// search under the lock, not an O(shards · vnodes · log) rebuild that
/// would serialize every concurrent forward.
struct ShardTable {
    shards: Vec<ShardState>,
    ring: Ring,
}

impl ShardTable {
    fn rebuild_ring(&mut self, vnodes: usize) {
        let alive: Vec<&str> = self
            .shards
            .iter()
            .filter(|s| s.up)
            .map(|s| s.name.as_str())
            .collect();
        self.ring = Ring::new(&alive, vnodes);
    }
}

struct RouterMetrics {
    registry: Arc<Registry>,
    shards: Arc<Gauge>,
    shards_up: Arc<Gauge>,
    failovers: Arc<Counter>,
    joins: Arc<Counter>,
    replays: Arc<Counter>,
    warm_entries: Arc<Counter>,
    errors_no_shards: Arc<Counter>,
    errors_route_mismatch: Arc<Counter>,
    errors_shard_protocol: Arc<Counter>,
    errors_forward_timeout: Arc<Counter>,
    errors_frame_too_large: Arc<Counter>,
}

impl RouterMetrics {
    fn new() -> RouterMetrics {
        let r = Arc::new(Registry::new());
        RouterMetrics {
            shards: r.gauge("sp_shards", "Shards registered with the router"),
            shards_up: r.gauge("sp_shards_up", "Shards currently believed alive"),
            failovers: r.counter(
                "sp_shard_failovers_total",
                "Up-to-down shard transitions (keyspace re-hashed to survivors)",
            ),
            joins: r.counter(
                "sp_shard_joins_total",
                "Shard joins and rejoins (cache warmed before traffic)",
            ),
            replays: r.counter(
                "sp_route_replays_total",
                "Forwards replayed to a different shard after a failure",
            ),
            warm_entries: r.counter(
                "sp_warm_entries_total",
                "Cache entries streamed to joining shards",
            ),
            errors_no_shards: r.counter_with(
                "sp_route_errors_total",
                "Typed errors returned to clients",
                &[("code", "no_shards")],
            ),
            errors_route_mismatch: r.counter_with(
                "sp_route_errors_total",
                "Typed errors returned to clients",
                &[("code", "route_mismatch")],
            ),
            errors_shard_protocol: r.counter_with(
                "sp_route_errors_total",
                "Typed errors returned to clients",
                &[("code", "shard_protocol")],
            ),
            errors_forward_timeout: r.counter_with(
                "sp_route_errors_total",
                "Typed errors returned to clients",
                &[("code", "forward_timeout")],
            ),
            errors_frame_too_large: r.counter_with(
                "sp_route_errors_total",
                "Typed errors returned to clients",
                &[("code", "frame_too_large")],
            ),
            registry: r,
        }
    }
}

/// How a forward attempt failed — the distinction failover hinges on.
///
/// Only [`ForwardFail::Dead`] may demote a shard and trigger replay. A
/// timeout is *not* death: the shard accepted the connection and may
/// legitimately still be computing (jobs run for seconds), so replaying
/// elsewhere could double-run the job, and demoting on every slow reply
/// would cascade a healthy fleet into `no_shards` — permanently so when
/// `health_interval_ms: 0` disables the probe that could re-admit them.
enum ForwardFail {
    /// Connection-level failure: refused, reset, mid-frame EOF, garbage
    /// framing. The shard is gone or unintelligible — demote and replay.
    Dead(std::io::Error),
    /// The shard took the request but no reply arrived within the forward
    /// budget. Report to the client; leave liveness to the health probe.
    Timeout,
}

fn is_timeout(e: &std::io::Error) -> bool {
    matches!(
        e.kind(),
        std::io::ErrorKind::TimedOut | std::io::ErrorKind::WouldBlock
    )
}

/// What the connection loop should do after sending a reply.
pub enum Handled {
    Reply(String),
    /// Reply, then stop the router (shutdown was requested and forwarded).
    ReplyThenStop(String),
}

/// A streaming session's frame journal: every state-changing frame the
/// router successfully delivered, in order, plus the shard currently
/// holding the session. Sessions are *stateful*, unlike submits — a shard
/// death loses the session's overlay — so failover replays the journal on
/// the survivor that now owns the session's key. Replay reconstructs the
/// exact state (responses are pure functions of the delta chain), after
/// which the current frame proceeds as if nothing happened.
struct SessionJournal {
    owner: String,
    frames: Vec<String>,
}

/// The routing coordinator. Cheap to clone via `Arc`; see module docs.
pub struct Router {
    cfg: RouterConfig,
    shards: Mutex<ShardTable>,
    metrics: RouterMetrics,
    next_tag: AtomicU64,
    stop: Arc<AtomicBool>,
    health_thread: Mutex<Option<JoinHandle<()>>>,
    started: Instant,
    /// Per-session frame journals for failover replay, keyed by session
    /// name. Entries are dropped when the session closes.
    session_journals: Mutex<HashMap<String, SessionJournal>>,
}

impl Router {
    /// Build a router over `(name, addr)` shard pairs. All start alive;
    /// the first failed forward or health probe demotes them.
    pub fn new(cfg: RouterConfig, shards: &[(String, String)]) -> std::io::Result<Arc<Router>> {
        let metrics = RouterMetrics::new();
        let mut states = Vec::with_capacity(shards.len());
        for (name, addr) in shards {
            let addr = resolve(addr)?;
            states.push(ShardState {
                up_gauge: metrics.registry.gauge_with(
                    "sp_shard_up",
                    "1 while the shard answers, 0 after a failure",
                    &[("shard", name)],
                ),
                forwards: metrics.registry.counter_with(
                    "sp_route_forwards_total",
                    "Requests forwarded per shard (including replays)",
                    &[("shard", name)],
                ),
                name: name.clone(),
                addr,
                up: true,
            });
            states.last().unwrap().up_gauge.set(1);
        }
        metrics.shards.set(states.len() as i64);
        metrics.shards_up.set(states.len() as i64);
        let mut table = ShardTable {
            shards: states,
            ring: Ring::new::<&str>(&[], cfg.vnodes),
        };
        table.rebuild_ring(cfg.vnodes);
        let router = Arc::new(Router {
            cfg: cfg.clone(),
            shards: Mutex::new(table),
            metrics,
            next_tag: AtomicU64::new(1),
            stop: Arc::new(AtomicBool::new(false)),
            health_thread: Mutex::new(None),
            started: Instant::now(),
            session_journals: Mutex::new(HashMap::new()),
        });
        if cfg.health_interval_ms > 0 {
            let r = router.clone();
            *router.health_thread.lock().unwrap() =
                Some(std::thread::spawn(move || health_loop(r)));
        }
        Ok(router)
    }

    /// Stop the health thread. Does not contact shards.
    pub fn shutdown(&self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(h) = self.health_thread.lock().unwrap().take() {
            let _ = h.join();
        }
    }

    pub fn is_stopped(&self) -> bool {
        self.stop.load(Ordering::SeqCst)
    }

    /// Prometheus exposition of the router's own registry.
    pub fn prometheus(&self) -> String {
        scalapart::obs::prom::render(&self.metrics.registry)
    }

    /// Current up→down transition count (the failover e2e asserts on it).
    pub fn failovers(&self) -> u64 {
        self.metrics.failovers.get()
    }

    /// Re-register a shard (same or new address) and warm its cache from
    /// the survivors before it takes traffic. Returns the number of cache
    /// entries streamed.
    pub fn rejoin(&self, name: &str, addr: &str) -> std::io::Result<usize> {
        let addr = resolve(addr)?;
        let donors: Vec<SocketAddr> = {
            let table = self.shards.lock().unwrap();
            table
                .shards
                .iter()
                .filter(|s| s.up && s.name != name)
                .map(|s| s.addr)
                .collect()
        };
        let warmed = self.warm(addr, &donors);
        let mut table = self.shards.lock().unwrap();
        match table.shards.iter_mut().find(|s| s.name == name) {
            Some(s) => {
                s.addr = addr;
                if !s.up {
                    s.up = true;
                    s.up_gauge.set(1);
                }
            }
            None => {
                table.shards.push(ShardState {
                    up_gauge: self.metrics.registry.gauge_with(
                        "sp_shard_up",
                        "1 while the shard answers, 0 after a failure",
                        &[("shard", name)],
                    ),
                    forwards: self.metrics.registry.counter_with(
                        "sp_route_forwards_total",
                        "Requests forwarded per shard (including replays)",
                        &[("shard", name)],
                    ),
                    name: name.to_string(),
                    addr,
                    up: true,
                });
                table.shards.last().unwrap().up_gauge.set(1);
                self.metrics.shards.set(table.shards.len() as i64);
            }
        }
        table.rebuild_ring(self.cfg.vnodes);
        self.metrics
            .shards_up
            .set(table.shards.iter().filter(|s| s.up).count() as i64);
        drop(table);
        self.metrics.joins.inc();
        Ok(warmed)
    }

    /// Stream hot cache entries from `donors` to the shard at `addr`.
    /// Byte-exact by construction (see `proto::WireCacheEntry`); failures
    /// are non-fatal — a cold joiner is merely slower, never wrong.
    fn warm(&self, addr: SocketAddr, donors: &[SocketAddr]) -> usize {
        let mut entries: Vec<WireCacheEntry> = Vec::new();
        for donor in donors {
            let dump = format!(
                "{{\"type\": \"cache_dump\", \"limit\": {}}}",
                self.cfg.warm_limit
            );
            let Ok(resp) = self.forward_once(*donor, &dump) else {
                continue;
            };
            let Ok(v) = Value::parse(&resp) else { continue };
            if let Ok(mut got) = crate::proto::decode_cache_entries(&v) {
                got.retain(|e| !entries.iter().any(|have| have.key == e.key));
                entries.append(&mut got);
            }
        }
        if entries.is_empty() {
            return 0;
        }
        let load = encode_cache_entries("cache_load", &entries);
        match self.forward_once(addr, &load) {
            Ok(resp) => {
                let loaded = Value::parse(&resp)
                    .ok()
                    .and_then(|v| v.get("loaded").and_then(Value::as_usize))
                    .unwrap_or(0);
                self.metrics.warm_entries.add(loaded as u64);
                loaded
            }
            Err(_) => 0,
        }
    }

    /// Handle one client frame: route, forward, relay.
    pub fn handle(&self, payload: &[u8]) -> Handled {
        let req = match Request::decode(payload) {
            Ok(r) => r,
            Err(msg) => return Handled::Reply(crate::proto::encode_error(&msg)),
        };
        match req {
            Request::Ping => Handled::Reply(encode_pong()),
            Request::Metrics => Handled::Reply(encode_metrics(&self.prometheus())),
            Request::Stats => Handled::Reply(self.merged_stats()),
            Request::Shutdown => {
                // Forward the drain to every live shard, then stop.
                let targets: Vec<SocketAddr> = {
                    let table = self.shards.lock().unwrap();
                    table
                        .shards
                        .iter()
                        .filter(|s| s.up)
                        .map(|s| s.addr)
                        .collect()
                };
                for addr in targets {
                    let _ = self.forward_once(addr, "{\"type\": \"shutdown\"}");
                }
                self.stop.store(true, Ordering::SeqCst);
                Handled::ReplyThenStop("{\"type\": \"ok\", \"draining\": true}".to_string())
            }
            Request::CacheDump { .. } | Request::CacheLoad { .. } => Handled::Reply(
                crate::proto::encode_error("cache requests go to shards, not the router"),
            ),
            Request::SessionOpen { ref session, .. }
            | Request::SessionDelta { ref session, .. }
            | Request::SessionRepartition { ref session }
            | Request::SessionClose { ref session } => {
                let is_close = matches!(req, Request::SessionClose { .. });
                let text = match std::str::from_utf8(payload) {
                    Ok(t) => t,
                    Err(_) => return Handled::Reply(crate::proto::encode_error("not UTF-8")),
                };
                Handled::Reply(self.route_session(session, text, is_close))
            }
            Request::Submit {
                ref graph,
                ref coords,
                method,
                parts,
                seed,
                route_tag,
                ..
            } => {
                if route_tag.is_some() {
                    // A client frame must not impersonate routed traffic.
                    return Handled::Reply(encode_typed_error(
                        "route_mismatch",
                        "route_tag is router-internal; clients must not set it",
                    ));
                }
                // Routing key = fingerprint of the job's cache key (sans
                // ranks, which is shard config, identical across shards).
                let input_fp = crate::fingerprint::fingerprint_input(
                    graph,
                    coords.as_ref().map(|c| c.as_slice()),
                );
                let mut fp = sp_trace::fnv::Fingerprint::new();
                fp.u64(input_fp);
                fp.bytes(method.proto_name().as_bytes());
                fp.u64(parts as u64);
                fp.u64(seed);
                let key = fp.finish();
                let text = match std::str::from_utf8(payload) {
                    Ok(t) => t,
                    Err(_) => return Handled::Reply(crate::proto::encode_error("not UTF-8")),
                };
                Handled::Reply(self.route_submit(text, key))
            }
        }
    }

    /// Forward a submit to the ring owner of `key`, failing over along the
    /// survivor ring until a shard answers or none are left. Only
    /// *connection-level* failures demote a shard; a slow reply or a local
    /// framing problem must not cascade the fleet down (see
    /// [`ForwardFail`]).
    fn route_submit(&self, frame: &str, key: u64) -> String {
        let tag = self.next_tag.fetch_add(1, Ordering::Relaxed);
        let tagged = append_field(frame, "route_tag", &tag.to_string());
        if tagged.len() > MAX_FRAME as usize {
            // The injected tag pushed a near-limit client frame over
            // MAX_FRAME. That is a local condition — forwarding would die
            // in our own write_frame, and treating it as shard death
            // would mark every owner down in turn until the whole fleet
            // reads as dead.
            self.metrics.errors_frame_too_large.inc();
            return encode_typed_error(
                "frame_too_large",
                "submit frame leaves no room for routing metadata; shrink the payload",
            );
        }
        let echo_suffix = format!(", \"route_tag\": {tag}}}");
        let mut attempts = 0usize;
        loop {
            let Some((name, addr)) = self.owner_of(key) else {
                self.metrics.errors_no_shards.inc();
                return encode_typed_error(
                    "no_shards",
                    "no live shard owns this keyspace; all replicas are down",
                );
            };
            attempts += 1;
            if attempts > 1 {
                self.metrics.replays.inc();
            }
            match self.forward_classified(addr, &tagged) {
                Ok(resp) => {
                    // The happy path: the shard echoed our tag as the
                    // final field. Strip it and relay the exact bytes.
                    if let Some(body) = resp.strip_suffix(echo_suffix.as_str()) {
                        self.count_forward(&name);
                        return format!("{body}}}");
                    }
                    // No trailing echo. Classify by what the shard sent.
                    let Ok(v) = Value::parse(&resp) else {
                        self.metrics.errors_shard_protocol.inc();
                        return encode_typed_error(
                            "shard_protocol",
                            &format!("shard {name} sent an unintelligible reply"),
                        );
                    };
                    let echoed = v.get("route_tag").and_then(Value::as_u64);
                    let is_error = v.get("type").and_then(Value::as_str) == Some("error");
                    return match echoed {
                        // The shard's frame-decode error path replies
                        // without echoing the tag — deterministic (every
                        // shard would say the same); relay it.
                        None if is_error => {
                            self.count_forward(&name);
                            resp
                        }
                        // A present-but-different tag is a shard
                        // answering the wrong job — protocol violation,
                        // never retried (retrying could double-run a job
                        // elsewhere while the confused shard still
                        // works).
                        Some(t) if t != tag => {
                            self.metrics.errors_route_mismatch.inc();
                            encode_typed_error(
                                "route_mismatch",
                                &format!("shard {name} answered with a mismatched route tag"),
                            )
                        }
                        // Right tag but not in the trailing position we
                        // appended, or no tag on a non-error reply: the
                        // frame was reshaped in flight.
                        _ => {
                            self.metrics.errors_shard_protocol.inc();
                            encode_typed_error(
                                "shard_protocol",
                                &format!("shard {name} sent an unintelligible reply"),
                            )
                        }
                    };
                }
                Err(ForwardFail::Timeout) => {
                    // No reply inside the forward budget. The shard may
                    // legitimately still be computing (the config comment
                    // admits seconds-long jobs), so this is a client
                    // budget exceeded, not a death certificate: replaying
                    // elsewhere could double-run the job, and demoting
                    // would let one slow job mark the whole fleet down.
                    // Liveness stays the health probe's call.
                    self.metrics.errors_forward_timeout.inc();
                    return encode_typed_error(
                        "forward_timeout",
                        &format!("shard {name} did not reply within the forward timeout"),
                    );
                }
                Err(ForwardFail::Dead(_)) => {
                    // Connection-level failure (refused, reset, mid-frame
                    // EOF, garbage framing): mark the shard dead (once)
                    // and replay on the next owner. Replay is safe
                    // because responses are bit-identical wherever the
                    // job runs.
                    self.mark_down(&name);
                }
            }
        }
    }

    /// Forward a session frame to the ring owner of the *session name* —
    /// every frame of a session hashes to the same shard, which is what
    /// keeps the session's overlay state in one place. On shard death the
    /// journal is replayed to the survivor owner before the current frame
    /// (see [`SessionJournal`]); the client sees bit-identical responses
    /// either way. Session frames are forwarded verbatim (no route tag):
    /// session responses deliberately carry no name, so they must not be
    /// reshaped in flight either.
    fn route_session(&self, session: &str, frame: &str, is_close: bool) -> String {
        let mut fp = sp_trace::fnv::Fingerprint::new();
        fp.bytes(session.as_bytes());
        let key = fp.finish();
        let mut attempts = 0usize;
        loop {
            let Some((name, addr)) = self.owner_of(key) else {
                self.metrics.errors_no_shards.inc();
                return encode_typed_error(
                    "no_shards",
                    "no live shard owns this session; all replicas are down",
                );
            };
            attempts += 1;
            if attempts > 1 {
                self.metrics.replays.inc();
            }
            // The owner changed since the journal was last delivered (a
            // failover, or a rejoin that re-hashed the keyspace): rebuild
            // the session on the new owner from the journal first.
            let replay: Option<Vec<String>> = {
                let journals = self.session_journals.lock().unwrap();
                journals
                    .get(session)
                    .filter(|j| j.owner != name)
                    .map(|j| j.frames.clone())
            };
            if let Some(frames) = replay {
                let mut owner_died = false;
                for f in &frames {
                    match self.forward_classified(addr, f) {
                        // Replayed responses were already delivered from
                        // the original owner; determinism makes them
                        // byte-identical, so they are simply dropped.
                        Ok(_) => {}
                        Err(ForwardFail::Timeout) => {
                            self.metrics.errors_forward_timeout.inc();
                            return encode_typed_error(
                                "forward_timeout",
                                &format!(
                                    "shard {name} did not reply within the forward timeout \
                                     while rebuilding the session"
                                ),
                            );
                        }
                        Err(ForwardFail::Dead(_)) => {
                            self.mark_down(&name);
                            owner_died = true;
                            break;
                        }
                    }
                }
                if owner_died {
                    continue;
                }
                let mut journals = self.session_journals.lock().unwrap();
                if let Some(j) = journals.get_mut(session) {
                    j.owner = name.clone();
                }
            }
            match self.forward_classified(addr, frame) {
                Ok(resp) => {
                    self.count_forward(&name);
                    // Journal only frames the shard accepted (`type`
                    // "session"): rejected frames changed no state, so
                    // replaying them would be wasted work at best and a
                    // different-error divergence at worst.
                    let accepted = Value::parse(&resp)
                        .ok()
                        .map(|v| v.get("type").and_then(Value::as_str) == Some("session"))
                        .unwrap_or(false);
                    if accepted {
                        let mut journals = self.session_journals.lock().unwrap();
                        if is_close {
                            journals.remove(session);
                        } else {
                            let j = journals.entry(session.to_string()).or_insert_with(|| {
                                SessionJournal {
                                    owner: name.clone(),
                                    frames: Vec::new(),
                                }
                            });
                            j.owner = name.clone();
                            j.frames.push(frame.to_string());
                        }
                    }
                    return resp;
                }
                Err(ForwardFail::Timeout) => {
                    self.metrics.errors_forward_timeout.inc();
                    return encode_typed_error(
                        "forward_timeout",
                        &format!("shard {name} did not reply within the forward timeout"),
                    );
                }
                Err(ForwardFail::Dead(_)) => {
                    self.mark_down(&name);
                }
            }
        }
    }

    fn count_forward(&self, name: &str) {
        let table = self.shards.lock().unwrap();
        if let Some(s) = table.shards.iter().find(|s| s.name == name) {
            s.forwards.inc();
        }
    }

    /// The live ring owner for `key`, with its address. A cached-ring
    /// lookup — the ring is rebuilt on membership transitions, never here.
    fn owner_of(&self, key: u64) -> Option<(String, SocketAddr)> {
        let table = self.shards.lock().unwrap();
        let owner = table.ring.owner(key)?;
        table
            .shards
            .iter()
            .find(|s| s.up && s.name == owner)
            .map(|s| (s.name.clone(), s.addr))
    }

    /// Demote a shard. The failover counter increments only on the
    /// up→down *transition* (under the shard-table lock), so concurrent
    /// detectors — eight clients and the health probe all seeing the same
    /// crash — count one failover, not nine.
    fn mark_down(&self, name: &str) {
        let mut table = self.shards.lock().unwrap();
        if let Some(s) = table.shards.iter_mut().find(|s| s.name == name && s.up) {
            s.up = false;
            s.up_gauge.set(0);
            self.metrics.failovers.inc();
            table.rebuild_ring(self.cfg.vnodes);
            self.metrics
                .shards_up
                .set(table.shards.iter().filter(|s| s.up).count() as i64);
        }
    }

    /// One round-trip to a shard: connect, send, read one frame.
    /// Convenience wrapper over [`Router::forward_classified`] for call
    /// sites (warming, stats, shutdown, probes) that don't need the
    /// death-vs-slow distinction.
    fn forward_once(&self, addr: SocketAddr, frame: &str) -> std::io::Result<String> {
        self.forward_classified(addr, frame).map_err(|f| match f {
            ForwardFail::Dead(e) => e,
            ForwardFail::Timeout => std::io::Error::new(
                std::io::ErrorKind::TimedOut,
                "shard did not reply within the forward timeout",
            ),
        })
    }

    /// One round-trip to a shard, with failures split into the two cases
    /// failover must treat differently (see [`ForwardFail`]).
    fn forward_classified(&self, addr: SocketAddr, frame: &str) -> Result<String, ForwardFail> {
        let timeout = Duration::from_millis(self.cfg.forward_timeout_ms.max(1));
        // An unreachable address is death even when the forward budget is
        // generous: connect has its own short ceiling.
        let mut stream = TcpStream::connect_timeout(&addr, timeout.min(Duration::from_secs(2)))
            .map_err(ForwardFail::Dead)?;
        stream.set_nodelay(true).ok();
        stream
            .set_read_timeout(Some(timeout))
            .map_err(ForwardFail::Dead)?;
        stream
            .set_write_timeout(Some(timeout))
            .map_err(ForwardFail::Dead)?;
        match write_frame(&mut stream, frame.as_bytes()).and_then(|()| stream.flush()) {
            Ok(()) => {}
            Err(e) if is_timeout(&e) => return Err(ForwardFail::Timeout),
            Err(e) => return Err(ForwardFail::Dead(e)),
        }
        match read_frame(&mut stream) {
            Ok(Some(payload)) => String::from_utf8(payload).map_err(|_| {
                ForwardFail::Dead(std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    "reply is not UTF-8",
                ))
            }),
            Ok(None) => Err(ForwardFail::Dead(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "shard closed before replying",
            ))),
            Err(e) if is_timeout(&e) => Err(ForwardFail::Timeout),
            Err(e) => Err(ForwardFail::Dead(e)),
        }
    }

    /// `{"type": "stats"}` merged across the fleet: the router's own view
    /// plus each shard's stats object (fetched live; `null` when down).
    fn merged_stats(&self) -> String {
        let snapshot: Vec<(String, SocketAddr, bool)> = {
            let table = self.shards.lock().unwrap();
            table
                .shards
                .iter()
                .map(|s| (s.name.clone(), s.addr, s.up))
                .collect()
        };
        let alive = snapshot.iter().filter(|(_, _, up)| *up).count();
        let mut out = format!(
            "{{\"type\": \"stats\", \"router\": {{\"schema\": \"sp-router-stats-v1\", \"shards\": {}, \"shards_up\": {}, \"failovers\": {}, \"joins\": {}, \"replays\": {}, \"uptime_s\": {}}}, \"shards\": [",
            snapshot.len(),
            alive,
            self.metrics.failovers.get(),
            self.metrics.joins.get(),
            self.metrics.replays.get(),
            self.started.elapsed().as_secs()
        );
        for (i, (name, addr, up)) in snapshot.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            let stats = if *up {
                self.forward_once(*addr, "{\"type\": \"stats\"}")
                    .ok()
                    .and_then(|resp| extract_stats_object(&resp))
            } else {
                None
            };
            out.push_str(&format!(
                "{{\"name\": \"{}\", \"up\": {}, \"stats\": {}}}",
                sp_trace::json::escape(name),
                up,
                stats.as_deref().unwrap_or("null")
            ));
        }
        out.push_str("]}");
        out
    }
}

/// Pull the raw `stats` object out of a shard's stats response without
/// re-serializing (there is no Value serializer, and byte-preservation is
/// the house style anyway).
fn extract_stats_object(resp: &str) -> Option<String> {
    let v = Value::parse(resp).ok()?;
    v.get("stats")?;
    let start = resp.find("\"stats\": ")? + "\"stats\": ".len();
    let bytes = resp.as_bytes();
    let mut depth = 0i32;
    let mut in_str = false;
    let mut esc = false;
    for (i, &b) in bytes.iter().enumerate().skip(start) {
        if esc {
            esc = false;
            continue;
        }
        match b {
            b'\\' if in_str => esc = true,
            b'"' => in_str = !in_str,
            b'{' if !in_str => depth += 1,
            b'}' if !in_str => {
                depth -= 1;
                if depth == 0 {
                    return Some(resp[start..=i].to_string());
                }
            }
            _ => {}
        }
    }
    None
}

fn resolve(addr: &str) -> std::io::Result<SocketAddr> {
    addr.to_socket_addrs()?.next().ok_or_else(|| {
        std::io::Error::new(
            std::io::ErrorKind::InvalidInput,
            format!("cannot resolve {addr}"),
        )
    })
}

fn health_loop(router: Arc<Router>) {
    let period = Duration::from_millis(router.cfg.health_interval_ms.max(10));
    while !router.stop.load(Ordering::SeqCst) {
        std::thread::sleep(period);
        let snapshot: Vec<(String, SocketAddr, bool)> = {
            let table = router.shards.lock().unwrap();
            table
                .shards
                .iter()
                .map(|s| (s.name.clone(), s.addr, s.up))
                .collect()
        };
        for (name, addr, was_up) in snapshot {
            if router.stop.load(Ordering::SeqCst) {
                return;
            }
            let alive = probe(addr);
            if was_up && !alive {
                router.mark_down(&name);
            } else if !was_up && alive {
                // Recovered at its old address: warm before re-admitting.
                let _ = router.rejoin(&name, &addr.to_string());
            }
        }
    }
}

/// A short-deadline ping, independent of the forward timeout: health
/// probes must detect death fast even while forwards allow long compute.
fn probe(addr: SocketAddr) -> bool {
    let timeout = Duration::from_millis(250);
    let Ok(mut stream) = TcpStream::connect_timeout(&addr, timeout) else {
        return false;
    };
    stream.set_read_timeout(Some(timeout)).ok();
    stream.set_write_timeout(Some(timeout)).ok();
    if write_frame(&mut stream, b"{\"type\": \"ping\"}").is_err() {
        return false;
    }
    matches!(read_frame(&mut stream), Ok(Some(p)) if p == b"{\"type\": \"pong\"}")
}

/// TCP front end for the router: same accept-loop shape as
/// [`net::Server`](crate::net::Server), but handlers delegate to
/// [`Router::handle`].
pub struct RouterServer {
    router: Arc<Router>,
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: Mutex<Option<JoinHandle<()>>>,
}

impl RouterServer {
    pub fn bind(addr: &str, router: Arc<Router>) -> std::io::Result<Arc<RouterServer>> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let server = Arc::new(RouterServer {
            router,
            addr,
            stop: Arc::new(AtomicBool::new(false)),
            accept_thread: Mutex::new(None),
        });
        let accept = {
            let server = server.clone();
            std::thread::spawn(move || accept_loop(server, listener))
        };
        *server.accept_thread.lock().unwrap() = Some(accept);
        Ok(server)
    }

    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    pub fn router(&self) -> &Arc<Router> {
        &self.router
    }

    pub fn shutdown(&self) {
        self.stop.store(true, Ordering::SeqCst);
        self.router.shutdown();
    }

    pub fn wait(&self) {
        let handle = self.accept_thread.lock().unwrap().take();
        if let Some(h) = handle {
            let _ = h.join();
        }
    }
}

fn accept_loop(server: Arc<RouterServer>, listener: TcpListener) {
    let mut handlers: Vec<JoinHandle<()>> = Vec::new();
    while !server.stop.load(Ordering::SeqCst) && !server.router.is_stopped() {
        match listener.accept() {
            Ok((stream, _)) => {
                let server = server.clone();
                handlers.push(std::thread::spawn(move || {
                    let _ = handle_connection(server, stream);
                }));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => {
                // Transient accept failures (EMFILE/ENFILE, ECONNABORTED)
                // must not kill the router's accept loop; only the stop
                // flag ends it.
                std::thread::sleep(Duration::from_millis(20));
            }
        }
        handlers.retain(|h| !h.is_finished());
    }
    for h in handlers {
        let _ = h.join();
    }
}

fn handle_connection(server: Arc<RouterServer>, mut stream: TcpStream) -> std::io::Result<()> {
    stream.set_nodelay(true).ok();
    stream
        .set_read_timeout(Some(Duration::from_millis(50)))
        .ok();
    loop {
        let payload = match crate::net::read_frame_stoppable(&mut stream, &server.stop) {
            Ok(Some(p)) => p,
            Ok(None) => return Ok(()),
            Err(e) if e.kind() == std::io::ErrorKind::InvalidData => {
                let _ = write_frame(
                    &mut stream,
                    crate::proto::encode_error(&e.to_string()).as_bytes(),
                );
                return Ok(());
            }
            Err(e) => return Err(e),
        };
        match server.router.handle(&payload) {
            Handled::Reply(resp) => write_frame(&mut stream, resp.as_bytes())?,
            Handled::ReplyThenStop(resp) => {
                write_frame(&mut stream, resp.as_bytes())?;
                stream.flush()?;
                server.stop.store(true, Ordering::SeqCst);
                return Ok(());
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_object_extraction_is_balanced_and_string_safe() {
        let resp =
            r#"{"type": "stats", "stats": {"a": {"b": "has } brace and \" quote"}, "c": 1}}"#;
        let got = extract_stats_object(resp).unwrap();
        assert_eq!(got, r#"{"a": {"b": "has } brace and \" quote"}, "c": 1}"#);
        assert!(extract_stats_object("{\"type\": \"stats\"}").is_none());
    }

    #[test]
    fn routing_is_stable_across_router_instances() {
        // Placement-only determinism: two routers over the same shard set
        // place every key identically (no per-process salt).
        let shards = vec![
            ("a".to_string(), "127.0.0.1:1".to_string()),
            ("b".to_string(), "127.0.0.1:2".to_string()),
            ("c".to_string(), "127.0.0.1:3".to_string()),
        ];
        let cfg = RouterConfig {
            health_interval_ms: 0,
            ..Default::default()
        };
        let r1 = Router::new(cfg.clone(), &shards).unwrap();
        let r2 = Router::new(cfg, &shards).unwrap();
        for key in [0u64, 42, u64::MAX, 0xDEAD_BEEF] {
            assert_eq!(
                r1.owner_of(key).map(|(n, _)| n),
                r2.owner_of(key).map(|(n, _)| n)
            );
        }
        r1.shutdown();
        r2.shutdown();
    }

    #[test]
    fn all_shards_down_yields_no_owner() {
        let shards = vec![("solo".to_string(), "127.0.0.1:1".to_string())];
        let r = Router::new(
            RouterConfig {
                health_interval_ms: 0,
                ..Default::default()
            },
            &shards,
        )
        .unwrap();
        assert!(r.owner_of(7).is_some());
        r.mark_down("solo");
        assert!(r.owner_of(7).is_none());
        assert_eq!(r.failovers(), 1);
        r.mark_down("solo"); // idempotent: no double count
        assert_eq!(r.failovers(), 1);
        r.shutdown();
    }
}
