//! The wire protocol: length-prefixed JSON frames.
//!
//! Every message — request or response — is one frame:
//!
//! ```text
//! [u32 length, big-endian][length bytes of UTF-8 JSON]
//! ```
//!
//! Frames larger than [`MAX_FRAME`] are rejected before reading the
//! payload, so a hostile length prefix cannot make the server allocate
//! gigabytes. Requests are parsed with the strict parser in
//! [`crate::json`]; any malformed frame produces an `error` response and
//! the connection stays usable.
//!
//! Requests (`type` field selects):
//!
//! - `{"type": "submit", "graph": "gen:grid:32x32", "method": "sp",
//!   "parts": 4, "seed": 1, "deadline_ms": 5000}` — the `graph` string
//!   names a generated workload (`gen:grid:WxH` or `suite:name[:scale]`
//!   with scale `tiny`|`bench`); alternatively `"chaco": "<file text>"`
//!   submits an inline Chaco graph.
//! - `{"type": "stats"}` — service counters and latency percentiles.
//! - `{"type": "metrics"}` — Prometheus text exposition (format 0.0.4)
//!   of the service's runtime metric registry, carried in the `body`
//!   field of the response frame (`sp-serve stats --prom` unwraps it).
//! - `{"type": "shutdown"}` — graceful drain, then the server exits.
//!
//! Distributed-serving extensions (see DESIGN.md "Distributed serving"):
//!
//! - Submit frames may carry `"route_tag": <u64>` — injected by the
//!   router, echoed verbatim in the shard's response so the router can
//!   detect a shard answering the wrong job. Clients must not set it.
//! - `{"type": "ping"}` — health probe; answered with `{"type": "pong"}`.
//! - `{"type": "cache_dump", "limit": N}` — the shard's hottest cache
//!   entries as `{"type": "cache", "entries": [...]}`. Each entry carries
//!   its `result` body as an *escaped JSON string*, not an embedded
//!   object: the escape/unescape pair round-trips byte-exactly, so a
//!   warmed cache replays bit-identical response bytes.
//! - `{"type": "cache_load", "entries": [...]}` — install dumped entries
//!   (cache warming on shard join); answered `{"type": "ok", "loaded": N}`.
//!
//! Streaming-session verbs (see DESIGN.md "Dynamic graphs"):
//!
//! - `{"type": "session_open", "session": "fleet", "graph":
//!   "gen:grid:32x32", "seed": 1}` — open a dynamic-graph session over a
//!   named workload (same `graph`/`chaco` forms as submit).
//! - `{"type": "session_delta", "session": "fleet", "deltas": [{"op":
//!   "add_edge", "u": 3, "v": 9, "w": 1.5}, {"op": "remove_edge", "u": 0,
//!   "v": 1}, {"op": "set_vwgt", "v": 4, "w": 2.0}, {"op": "shift_coord",
//!   "v": 7, "dx": 0.1, "dy": -0.2}]}` — apply a delta batch atomically.
//! - `{"type": "session_repartition", "session": "fleet"}` — re-refine
//!   the dirty region (or re-partition fully past the threshold).
//! - `{"type": "session_close", "session": "fleet"}` — drop the session.

use crate::cache::CacheKey;
use crate::json::Value;
use crate::service::{JobOutcome, SubmitError};
use scalapart::stream::GraphDelta;
use scalapart::Method;
use sp_geometry::Point2;
use sp_graph::gen::{grid_2d, grid_2d_coords};
use sp_graph::suite::{SuiteGraph, TestScale};
use sp_graph::{io::read_chaco, Graph};
use sp_trace::json::{escape, num};
use std::io::{Read, Write};
use std::sync::Arc;

/// Largest accepted frame payload (16 MiB) — enough for a multi-million
/// vertex label vector, small enough to bound a hostile allocation.
pub const MAX_FRAME: u32 = 16 * 1024 * 1024;

/// Read one length-prefixed frame. `Ok(None)` means the peer closed the
/// connection cleanly before a header.
pub fn read_frame<R: Read>(r: &mut R) -> std::io::Result<Option<Vec<u8>>> {
    let mut len = [0u8; 4];
    match r.read_exact(&mut len) {
        Ok(()) => {}
        Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(e),
    }
    let len = u32::from_be_bytes(len);
    if len > MAX_FRAME {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("frame of {len} bytes exceeds the {MAX_FRAME}-byte limit"),
        ));
    }
    let mut buf = vec![0u8; len as usize];
    r.read_exact(&mut buf)?;
    Ok(Some(buf))
}

/// Write one length-prefixed frame.
pub fn write_frame<W: Write>(w: &mut W, payload: &[u8]) -> std::io::Result<()> {
    let len = u32::try_from(payload.len())
        .map_err(|_| std::io::Error::new(std::io::ErrorKind::InvalidData, "frame too large"))?;
    if len > MAX_FRAME {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            "frame exceeds MAX_FRAME",
        ));
    }
    w.write_all(&len.to_be_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// A decoded client request.
pub enum Request {
    Submit {
        graph: Arc<Graph>,
        coords: Option<Arc<Vec<Point2>>>,
        method: Method,
        parts: usize,
        seed: u64,
        deadline_ms: Option<u64>,
        /// Router-injected correlation tag, echoed in the response. `None`
        /// for direct clients.
        route_tag: Option<u64>,
    },
    Stats,
    Metrics,
    Shutdown,
    Ping,
    CacheDump {
        limit: usize,
    },
    CacheLoad {
        entries: Vec<WireCacheEntry>,
    },
    SessionOpen {
        session: String,
        graph: Arc<Graph>,
        coords: Option<Arc<Vec<Point2>>>,
        seed: u64,
    },
    SessionDelta {
        session: String,
        deltas: Vec<GraphDelta>,
    },
    SessionRepartition {
        session: String,
    },
    SessionClose {
        session: String,
    },
}

impl Request {
    /// Decode a request frame. Errors are human-readable one-liners that
    /// go straight into an `error` response.
    pub fn decode(payload: &[u8]) -> Result<Request, String> {
        let text = std::str::from_utf8(payload).map_err(|_| "frame is not UTF-8".to_string())?;
        let v = Value::parse(text).map_err(|e| format!("bad JSON: {e}"))?;
        let ty = v
            .get("type")
            .and_then(Value::as_str)
            .ok_or("missing \"type\" field")?;
        match ty {
            "stats" => Ok(Request::Stats),
            "metrics" => Ok(Request::Metrics),
            "shutdown" => Ok(Request::Shutdown),
            "ping" => Ok(Request::Ping),
            "cache_dump" => {
                let limit = v.get("limit").and_then(Value::as_usize).unwrap_or(32);
                Ok(Request::CacheDump { limit })
            }
            "cache_load" => {
                let entries = decode_cache_entries(&v)?;
                Ok(Request::CacheLoad { entries })
            }
            "submit" => Self::decode_submit(&v),
            "session_open" => {
                let session = session_name(&v)?;
                let (graph, coords) = decode_graph_source(&v, "session_open")?;
                let seed = v.get("seed").and_then(Value::as_u64).unwrap_or(1);
                Ok(Request::SessionOpen {
                    session,
                    graph,
                    coords,
                    seed,
                })
            }
            "session_delta" => Ok(Request::SessionDelta {
                session: session_name(&v)?,
                deltas: decode_deltas(&v)?,
            }),
            "session_repartition" => Ok(Request::SessionRepartition {
                session: session_name(&v)?,
            }),
            "session_close" => Ok(Request::SessionClose {
                session: session_name(&v)?,
            }),
            other => Err(format!("unknown request type {other:?}")),
        }
    }

    fn decode_submit(v: &Value) -> Result<Request, String> {
        let (graph, coords) = decode_graph_source(v, "submit")?;
        let method_name = v
            .get("method")
            .and_then(Value::as_str)
            .ok_or("missing \"method\"")?;
        let method =
            Method::parse(method_name).ok_or_else(|| format!("unknown method {method_name:?}"))?;
        let parts = v
            .get("parts")
            .and_then(Value::as_usize)
            .ok_or("missing or non-integer \"parts\"")?;
        if parts < 2 || parts > graph.n() {
            return Err(format!(
                "\"parts\" must be in 2..=n ({} vertices), got {parts}",
                graph.n()
            ));
        }
        let seed = v.get("seed").and_then(Value::as_u64).unwrap_or(1);
        let deadline_ms = match v.get("deadline_ms") {
            None | Some(Value::Null) => None,
            Some(d) => Some(
                d.as_u64()
                    .ok_or("\"deadline_ms\" must be a non-negative integer")?,
            ),
        };
        let route_tag = match v.get("route_tag") {
            None | Some(Value::Null) => None,
            Some(t) => Some(t.as_u64().ok_or("\"route_tag\" must be a u64")?),
        };
        Ok(Request::Submit {
            graph,
            coords,
            method,
            parts,
            seed,
            deadline_ms,
            route_tag,
        })
    }
}

type GraphAndCoords = (Arc<Graph>, Option<Arc<Vec<Point2>>>);

/// Resolve a request's graph source: a `"graph"` workload spec or an
/// inline `"chaco"` text, exactly one of the two.
fn decode_graph_source(v: &Value, verb: &str) -> Result<GraphAndCoords, String> {
    match (v.get("graph"), v.get("chaco")) {
        (Some(spec), None) => {
            let spec = spec.as_str().ok_or("\"graph\" must be a string")?;
            parse_graph_spec(spec)
        }
        (None, Some(text)) => {
            let text = text.as_str().ok_or("\"chaco\" must be a string")?;
            let g = read_chaco(text.as_bytes()).map_err(|e| format!("bad chaco graph: {e}"))?;
            Ok((Arc::new(g), None))
        }
        (Some(_), Some(_)) => Err("give either \"graph\" or \"chaco\", not both".into()),
        (None, None) => Err(format!("{verb} needs a \"graph\" spec or inline \"chaco\"")),
    }
}

/// Extract and validate the `session` name of a session verb. Names are
/// routing keys and journal keys, so they are bounded and non-empty.
fn session_name(v: &Value) -> Result<String, String> {
    let name = v
        .get("session")
        .and_then(Value::as_str)
        .ok_or("missing \"session\" name")?;
    if name.is_empty() {
        return Err("\"session\" must be non-empty".into());
    }
    if name.len() > 128 {
        return Err(format!(
            "\"session\" name of {} bytes exceeds the 128-byte limit",
            name.len()
        ));
    }
    Ok(name.to_string())
}

/// Decode the `deltas` array of a `session_delta` frame.
pub fn decode_deltas(v: &Value) -> Result<Vec<GraphDelta>, String> {
    let arr = v
        .get("deltas")
        .and_then(Value::as_arr)
        .ok_or("missing \"deltas\" array")?;
    let mut out = Vec::with_capacity(arr.len());
    for (i, d) in arr.iter().enumerate() {
        let op = d
            .get("op")
            .and_then(Value::as_str)
            .ok_or_else(|| format!("delta {i} missing \"op\""))?;
        let u32_field = |key: &str| -> Result<u32, String> {
            d.get(key)
                .and_then(Value::as_u64)
                .and_then(|x| u32::try_from(x).ok())
                .ok_or_else(|| format!("delta {i} ({op}) needs u32 \"{key}\""))
        };
        let f64_field = |key: &str| -> Result<f64, String> {
            d.get(key)
                .and_then(Value::as_f64)
                .ok_or_else(|| format!("delta {i} ({op}) needs number \"{key}\""))
        };
        out.push(match op {
            "add_edge" => GraphDelta::AddEdge {
                u: u32_field("u")?,
                v: u32_field("v")?,
                w: f64_field("w")?,
            },
            "remove_edge" => GraphDelta::RemoveEdge {
                u: u32_field("u")?,
                v: u32_field("v")?,
            },
            "set_vwgt" => GraphDelta::SetVwgt {
                v: u32_field("v")?,
                w: f64_field("w")?,
            },
            "shift_coord" => GraphDelta::ShiftCoord {
                v: u32_field("v")?,
                dx: f64_field("dx")?,
                dy: f64_field("dy")?,
            },
            other => return Err(format!("delta {i}: unknown op {other:?}")),
        });
    }
    Ok(out)
}

/// Resolve a `gen:grid:WxH` or `suite:name[:scale]` workload name.
fn parse_graph_spec(spec: &str) -> Result<GraphAndCoords, String> {
    let mut it = spec.split(':');
    match it.next() {
        Some("gen") => match it.next() {
            Some("grid") => {
                let dims = it
                    .next()
                    .ok_or("gen:grid needs dimensions, e.g. gen:grid:32x32")?;
                let (w, h) = dims
                    .split_once('x')
                    .ok_or("grid dimensions must look like 32x32")?;
                let parse = |s: &str| -> Result<usize, String> {
                    let v: usize = s.parse().map_err(|_| format!("bad grid dimension {s:?}"))?;
                    if (2..=4096).contains(&v) {
                        Ok(v)
                    } else {
                        Err(format!("grid dimension {v} outside 2..=4096"))
                    }
                };
                let (w, h) = (parse(w)?, parse(h)?);
                Ok((
                    Arc::new(grid_2d(h, w)),
                    Some(Arc::new(grid_2d_coords(h, w))),
                ))
            }
            other => Err(format!("unknown generator {other:?}; try gen:grid:WxH")),
        },
        Some("suite") => {
            let name = it.next().ok_or("suite: needs a graph name")?;
            let which = SuiteGraph::all()
                .into_iter()
                .find(|s| s.name() == name)
                .ok_or_else(|| {
                    let names: Vec<&str> = SuiteGraph::all().iter().map(|s| s.name()).collect();
                    format!("unknown suite graph {name:?}; known: {}", names.join(", "))
                })?;
            let scale = match it.next() {
                None | Some("tiny") => TestScale::Tiny,
                Some("bench") => TestScale::Bench,
                Some(other) => return Err(format!("unknown scale {other:?}; use tiny or bench")),
            };
            let tg = which.instantiate(scale, 1);
            Ok((Arc::new(tg.graph), tg.coords.map(Arc::new)))
        }
        _ => Err(format!(
            "unknown graph spec {spec:?}; use gen:grid:WxH or suite:name[:scale]"
        )),
    }
}

/// One result-cache entry on the wire (cache warming). The `result` body
/// travels as an escaped JSON *string*: `escape`/parse round-trips bytes
/// exactly, so installing the entry on another shard reproduces responses
/// byte-for-byte, and `sim_time` is emitted by `num` (shortest round-trip
/// form), which std float parsing recovers bit-exactly.
#[derive(Clone, Debug, PartialEq)]
pub struct WireCacheEntry {
    pub key: CacheKey,
    pub sim_time: f64,
    pub result_json: String,
}

/// Encode cache entries as a `{"type": "cache", "entries": [...]}` frame
/// (also the body of a `cache_load` request, with the type re-labelled).
pub fn encode_cache_entries(ty: &str, entries: &[WireCacheEntry]) -> String {
    let mut out = format!("{{\"type\": \"{ty}\", \"entries\": [");
    for (i, e) in entries.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&format!(
            "{{\"input\": \"{:016x}\", \"method\": \"{}\", \"parts\": {}, \"ranks\": {}, \"seed\": {}, \"sim_time\": {}, \"result\": \"{}\"}}",
            e.key.input,
            e.key.method.proto_name(),
            e.key.parts,
            e.key.ranks,
            e.key.seed,
            num(e.sim_time),
            escape(&e.result_json)
        ));
    }
    out.push_str("]}");
    out
}

/// Decode the `entries` array of a `cache` / `cache_load` frame.
pub fn decode_cache_entries(v: &Value) -> Result<Vec<WireCacheEntry>, String> {
    let arr = v
        .get("entries")
        .and_then(Value::as_arr)
        .ok_or("missing \"entries\" array")?;
    let mut out = Vec::with_capacity(arr.len());
    for e in arr {
        let input_hex = e
            .get("input")
            .and_then(Value::as_str)
            .ok_or("cache entry missing \"input\"")?;
        let input = u64::from_str_radix(input_hex, 16)
            .map_err(|_| format!("bad fingerprint {input_hex:?}"))?;
        let method_name = e
            .get("method")
            .and_then(Value::as_str)
            .ok_or("cache entry missing \"method\"")?;
        let method =
            Method::parse(method_name).ok_or_else(|| format!("unknown method {method_name:?}"))?;
        let parts = e
            .get("parts")
            .and_then(Value::as_usize)
            .ok_or("cache entry missing \"parts\"")?;
        let ranks = e
            .get("ranks")
            .and_then(Value::as_usize)
            .ok_or("cache entry missing \"ranks\"")?;
        let seed = e
            .get("seed")
            .and_then(Value::as_u64)
            .ok_or("cache entry missing \"seed\"")?;
        let sim_time = e
            .get("sim_time")
            .and_then(Value::as_f64)
            .ok_or("cache entry missing \"sim_time\"")?;
        let result_json = e
            .get("result")
            .and_then(Value::as_str)
            .ok_or("cache entry missing \"result\"")?
            .to_string();
        out.push(WireCacheEntry {
            key: CacheKey {
                input,
                method,
                parts,
                ranks,
                seed,
            },
            sim_time,
            result_json,
        });
    }
    Ok(out)
}

/// Append `"key": <raw JSON value>` to an encoded JSON object, just before
/// its closing brace. The router uses this to inject `route_tag` into
/// submit frames and shards use it to echo the tag back — pure string
/// surgery, so the rest of the payload's bytes are untouched (the
/// determinism contract compares those bytes).
pub fn append_field(obj: &str, key: &str, raw_value: &str) -> String {
    let trimmed = obj.trim_end();
    debug_assert!(trimmed.ends_with('}'), "not a JSON object: {obj:?}");
    let body = &trimmed[..trimmed.len() - 1];
    format!("{body}, \"{key}\": {raw_value}}}")
}

/// Encode a finished job as a response frame payload. `result_json` from
/// the cache is embedded verbatim, so a cache hit's response body is
/// byte-identical to the original's `result` object.
pub fn encode_outcome(outcome: &JobOutcome) -> String {
    match outcome {
        JobOutcome::Done {
            job_id,
            result,
            cache_hit,
            latency_ms,
        } => format!(
            "{{\"type\": \"result\", \"status\": \"ok\", \"job\": {job_id}, \"cache_hit\": {}, \"latency_ms\": {}, \"sim_time\": {}, \"fingerprint\": \"{:016x}\", \"result\": {}}}",
            cache_hit,
            num(*latency_ms),
            num(result.sim_time),
            result.input_fp,
            result.result_json
        ),
        JobOutcome::Timeout { job_id, latency_ms } => format!(
            "{{\"type\": \"result\", \"status\": \"timeout\", \"job\": {job_id}, \"latency_ms\": {}, \"message\": \"deadline exceeded; job cancelled at a pipeline checkpoint\"}}",
            num(*latency_ms)
        ),
        JobOutcome::Failed {
            job_id,
            message,
            latency_ms,
        } => format!(
            "{{\"type\": \"result\", \"status\": \"failed\", \"job\": {job_id}, \"latency_ms\": {}, \"message\": \"{}\"}}",
            num(*latency_ms),
            escape(message)
        ),
    }
}

/// Encode a Prometheus exposition as a response frame: the text rides in
/// the `body` field of a JSON frame (the framed protocol has no raw-text
/// mode; `sp-serve stats --prom` unescapes it back to plain text).
pub fn encode_metrics(exposition: &str) -> String {
    format!(
        "{{\"type\": \"metrics\", \"content_type\": \"text/plain; version=0.0.4\", \"body\": \"{}\"}}",
        escape(exposition)
    )
}

/// Encode a backpressure rejection.
pub fn encode_rejection(err: &SubmitError) -> String {
    match err {
        SubmitError::QueueFull { retry_after_ms } => format!(
            "{{\"type\": \"result\", \"status\": \"rejected\", \"reason\": \"queue_full\", \"retry_after_ms\": {retry_after_ms}}}"
        ),
        SubmitError::ShuttingDown => {
            "{\"type\": \"result\", \"status\": \"rejected\", \"reason\": \"shutting_down\"}"
                .to_string()
        }
    }
}

/// Encode a protocol-level error (malformed frame, unknown type, …).
pub fn encode_error(message: &str) -> String {
    format!(
        "{{\"type\": \"error\", \"message\": \"{}\"}}",
        escape(message)
    )
}

/// Encode a typed error: like [`encode_error`] but with a machine-readable
/// `code` so router clients can distinguish `no_shards` (every replica of
/// the keyspace is down) from `route_mismatch` (a shard answered with the
/// wrong correlation tag — a protocol violation, never retried),
/// `shard_protocol` (a shard's reply frame was malformed),
/// `forward_timeout` (the shard took the job but exceeded the forward
/// budget — it is *not* demoted; it may still be computing), and
/// `frame_too_large` (the submit frame leaves no room for the injected
/// routing tag — rejected locally, never forwarded).
pub fn encode_typed_error(code: &str, message: &str) -> String {
    format!(
        "{{\"type\": \"error\", \"code\": \"{}\", \"message\": \"{}\"}}",
        escape(code),
        escape(message)
    )
}

/// The health-probe response.
pub fn encode_pong() -> String {
    "{\"type\": \"pong\"}".to_string()
}

/// The raw byte span of a top-level field's value inside an encoded
/// response — no re-serialization, so two responses can be compared for
/// *byte* identity field by field (the determinism contract is stated in
/// bytes, not parsed values). Handles object, string, and scalar values.
pub fn extract_raw_field<'a>(resp: &'a str, field: &str) -> Option<&'a str> {
    let needle = format!("\"{field}\": ");
    let start = resp.find(&needle)? + needle.len();
    let bytes = resp.as_bytes();
    match *bytes.get(start)? {
        b'{' | b'[' => {
            let (open, close) = if bytes[start] == b'{' {
                (b'{', b'}')
            } else {
                (b'[', b']')
            };
            let mut depth = 0i32;
            let mut in_str = false;
            let mut esc = false;
            for (i, &b) in bytes.iter().enumerate().skip(start) {
                if esc {
                    esc = false;
                    continue;
                }
                match b {
                    b'\\' if in_str => esc = true,
                    b'"' => in_str = !in_str,
                    _ if in_str => {}
                    b if b == open => depth += 1,
                    b if b == close => {
                        depth -= 1;
                        if depth == 0 {
                            return Some(&resp[start..=i]);
                        }
                    }
                    _ => {}
                }
            }
            None
        }
        b'"' => {
            let mut esc = false;
            for (i, &b) in bytes.iter().enumerate().skip(start + 1) {
                if esc {
                    esc = false;
                } else if b == b'\\' {
                    esc = true;
                } else if b == b'"' {
                    return Some(&resp[start..=i]);
                }
            }
            None
        }
        _ => {
            let end = bytes[start..]
                .iter()
                .position(|&b| b == b',' || b == b'}' || b == b']')?;
            Some(resp[start..start + end].trim_end())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn decode(s: &str) -> Result<Request, String> {
        Request::decode(s.as_bytes())
    }

    #[test]
    fn frames_roundtrip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"{\"type\": \"stats\"}").unwrap();
        write_frame(&mut buf, b"").unwrap();
        let mut r = &buf[..];
        assert_eq!(
            read_frame(&mut r).unwrap().unwrap(),
            b"{\"type\": \"stats\"}"
        );
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), b"");
        assert!(read_frame(&mut r).unwrap().is_none(), "clean EOF");
    }

    #[test]
    fn oversized_frame_is_rejected_before_allocation() {
        let mut buf = (MAX_FRAME + 1).to_be_bytes().to_vec();
        buf.extend_from_slice(b"xx");
        let err = read_frame(&mut &buf[..]).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    }

    #[test]
    fn truncated_payload_is_an_error_not_a_hang() {
        let mut buf = 10u32.to_be_bytes().to_vec();
        buf.extend_from_slice(b"abc");
        assert!(read_frame(&mut &buf[..]).is_err());
    }

    #[test]
    fn submit_decodes_grid_suite_and_chaco() {
        let r = decode(
            r#"{"type": "submit", "graph": "gen:grid:8x6", "method": "rcb", "parts": 4, "seed": 7}"#,
        )
        .unwrap();
        match r {
            Request::Submit {
                graph,
                coords,
                method,
                parts,
                seed,
                deadline_ms,
                route_tag,
            } => {
                assert_eq!(graph.n(), 48);
                assert_eq!(coords.unwrap().len(), 48);
                assert_eq!(method, Method::Rcb);
                assert_eq!((parts, seed, deadline_ms), (4, 7, None));
                assert_eq!(route_tag, None);
            }
            _ => panic!("expected Submit"),
        }

        let r =
            decode(r#"{"type": "submit", "graph": "suite:kkt_power", "method": "sp", "parts": 2}"#)
                .unwrap();
        match r {
            Request::Submit { graph, coords, .. } => {
                assert!(graph.n() >= 256);
                assert!(coords.is_none(), "kkt_power is the coordinate-free case");
            }
            _ => panic!("expected Submit"),
        }

        let chaco = "3 2\n2\n1 3\n2\n";
        let req = format!(
            "{{\"type\": \"submit\", \"chaco\": \"{}\", \"method\": \"parmetis\", \"parts\": 2}}",
            sp_trace::json::escape(chaco)
        );
        match decode(&req).unwrap() {
            Request::Submit { graph, .. } => assert_eq!((graph.n(), graph.m()), (3, 2)),
            _ => panic!("expected Submit"),
        }
    }

    #[test]
    fn malformed_submits_are_rejected_with_reasons() {
        for (req, want) in [
            ("{\"type\": \"nope\"}", "unknown request type"),
            ("{\"no_type\": 1}", "missing \"type\""),
            ("not json at all", "bad JSON"),
            (
                r#"{"type": "submit", "method": "sp", "parts": 2}"#,
                "needs a \"graph\"",
            ),
            (
                r#"{"type": "submit", "graph": "gen:grid:2x2", "method": "sp", "parts": 9}"#,
                "\"parts\" must be in 2..=n",
            ),
            (
                r#"{"type": "submit", "graph": "gen:grid:4x4", "method": "quantum", "parts": 2}"#,
                "unknown method",
            ),
            (
                r#"{"type": "submit", "graph": "gen:grid:9999999x2", "method": "sp", "parts": 2}"#,
                "outside 2..=4096",
            ),
            (
                r#"{"type": "submit", "graph": "suite:no_such", "method": "sp", "parts": 2}"#,
                "unknown suite graph",
            ),
            (
                r#"{"type": "submit", "chaco": "2 5\n2\n1\n", "method": "sp", "parts": 2}"#,
                "bad chaco graph",
            ),
        ] {
            let err = match decode(req) {
                Err(e) => e,
                Ok(_) => panic!("{req}: unexpectedly accepted"),
            };
            assert!(err.contains(want), "{req}: {err}");
        }
    }

    #[test]
    fn error_encoding_escapes_payloads() {
        let e = encode_error("tab\there \"quoted\"");
        let v = Value::parse(&e).unwrap();
        assert_eq!(
            v.get("message").unwrap().as_str().unwrap(),
            "tab\there \"quoted\""
        );
        let t = encode_typed_error("no_shards", "all 3 shards down");
        let v = Value::parse(&t).unwrap();
        assert_eq!(v.get("code").unwrap().as_str().unwrap(), "no_shards");
    }

    #[test]
    fn route_tag_decodes_and_append_field_injects_it() {
        let req = r#"{"type": "submit", "graph": "gen:grid:4x4", "method": "sp", "parts": 2}"#;
        let tagged = append_field(req, "route_tag", "99");
        match decode(&tagged).unwrap() {
            Request::Submit { route_tag, .. } => assert_eq!(route_tag, Some(99)),
            _ => panic!("expected Submit"),
        }
        // Injection is pure suffix surgery: the original bytes survive.
        assert!(tagged.starts_with(&req[..req.len() - 1]));
        assert!(tagged.ends_with(", \"route_tag\": 99}"));
    }

    #[test]
    fn cache_entries_round_trip_byte_exactly() {
        let entries = vec![
            WireCacheEntry {
                key: CacheKey {
                    input: 0xDEAD_BEEF_0123_4567,
                    method: Method::ScalaPart,
                    parts: 4,
                    ranks: 8,
                    seed: 7,
                },
                sim_time: 0.1 + 0.2, // a value whose shortest form exercises round-trip
                result_json: "{\"schema\": \"sp-partition-v1\", \"part\": [0,1]}".to_string(),
            },
            WireCacheEntry {
                key: CacheKey {
                    input: 1,
                    method: Method::Rcb,
                    parts: 2,
                    ranks: 4,
                    seed: 0,
                },
                sim_time: 3.0,
                result_json: "{\"x\": \"with \\\"quotes\\\" and\\ttabs\"}".to_string(),
            },
        ];
        let encoded = encode_cache_entries("cache", &entries);
        let v = Value::parse(&encoded).unwrap();
        let back = decode_cache_entries(&v).unwrap();
        assert_eq!(back, entries, "wire round-trip must preserve every byte");
        match Request::decode(encode_cache_entries("cache_load", &entries).as_bytes()).unwrap() {
            Request::CacheLoad { entries: got } => assert_eq!(got, entries),
            _ => panic!("expected CacheLoad"),
        }
    }

    #[test]
    fn raw_field_extraction_preserves_bytes() {
        let resp = r#"{"type": "result", "sim_time": 0.30000000000000004, "fingerprint": "00ab", "result": {"part": [0,1], "s": "br}ace"}}"#;
        assert_eq!(
            extract_raw_field(resp, "sim_time"),
            Some("0.30000000000000004")
        );
        assert_eq!(extract_raw_field(resp, "fingerprint"), Some("\"00ab\""));
        assert_eq!(
            extract_raw_field(resp, "result"),
            Some(r#"{"part": [0,1], "s": "br}ace"}"#)
        );
        assert_eq!(extract_raw_field(resp, "missing"), None);
    }

    #[test]
    fn session_verbs_decode() {
        match decode(
            r#"{"type": "session_open", "session": "s1", "graph": "gen:grid:6x6", "seed": 9}"#,
        )
        .unwrap()
        {
            Request::SessionOpen {
                session,
                graph,
                coords,
                seed,
            } => {
                assert_eq!(session, "s1");
                assert_eq!(graph.n(), 36);
                assert!(coords.is_some());
                assert_eq!(seed, 9);
            }
            _ => panic!("expected SessionOpen"),
        }
        let req = r#"{"type": "session_delta", "session": "s1", "deltas": [
            {"op": "add_edge", "u": 3, "v": 9, "w": 1.5},
            {"op": "remove_edge", "u": 0, "v": 1},
            {"op": "set_vwgt", "v": 4, "w": 2.0},
            {"op": "shift_coord", "v": 7, "dx": 0.1, "dy": -0.25}]}"#;
        match decode(req).unwrap() {
            Request::SessionDelta { session, deltas } => {
                assert_eq!(session, "s1");
                assert_eq!(deltas.len(), 4);
                assert!(matches!(deltas[0], GraphDelta::AddEdge { u: 3, v: 9, .. }));
                assert!(matches!(deltas[3], GraphDelta::ShiftCoord { v: 7, .. }));
            }
            _ => panic!("expected SessionDelta"),
        }
        assert!(matches!(
            decode(r#"{"type": "session_repartition", "session": "s1"}"#).unwrap(),
            Request::SessionRepartition { .. }
        ));
        assert!(matches!(
            decode(r#"{"type": "session_close", "session": "s1"}"#).unwrap(),
            Request::SessionClose { .. }
        ));
    }

    #[test]
    fn malformed_session_frames_are_rejected_with_reasons() {
        for (req, want) in [
            (
                r#"{"type": "session_open", "graph": "gen:grid:4x4"}"#,
                "missing \"session\"",
            ),
            (
                r#"{"type": "session_open", "session": "", "graph": "gen:grid:4x4"}"#,
                "non-empty",
            ),
            (
                r#"{"type": "session_open", "session": "x"}"#,
                "needs a \"graph\"",
            ),
            (
                r#"{"type": "session_delta", "session": "x"}"#,
                "missing \"deltas\"",
            ),
            (
                r#"{"type": "session_delta", "session": "x", "deltas": [{"op": "warp", "v": 1}]}"#,
                "unknown op",
            ),
            (
                r#"{"type": "session_delta", "session": "x", "deltas": [{"op": "add_edge", "u": 1}]}"#,
                "needs u32 \"v\"",
            ),
            (
                r#"{"type": "session_delta", "session": "x", "deltas": [{"op": "set_vwgt", "v": 1}]}"#,
                "needs number \"w\"",
            ),
        ] {
            let err = match decode(req) {
                Err(e) => e,
                Ok(_) => panic!("{req}: unexpectedly accepted"),
            };
            assert!(err.contains(want), "{req}: {err}");
        }
        let long = format!(
            r#"{{"type": "session_close", "session": "{}"}}"#,
            "s".repeat(200)
        );
        match decode(&long) {
            Err(e) => assert!(e.contains("128-byte limit"), "{e}"),
            Ok(_) => panic!("oversized session name unexpectedly accepted"),
        }
    }

    #[test]
    fn ping_and_cache_dump_decode() {
        assert!(matches!(
            decode(r#"{"type": "ping"}"#).unwrap(),
            Request::Ping
        ));
        match decode(r#"{"type": "cache_dump", "limit": 5}"#).unwrap() {
            Request::CacheDump { limit } => assert_eq!(limit, 5),
            _ => panic!("expected CacheDump"),
        }
        match decode(r#"{"type": "cache_dump"}"#).unwrap() {
            Request::CacheDump { limit } => assert_eq!(limit, 32),
            _ => panic!("expected CacheDump"),
        }
    }
}
