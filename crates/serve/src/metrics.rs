//! The service's metric surface: every instrument sp-serve exports,
//! registered once at startup against an [`sp_obs::Registry`].
//!
//! Naming follows Prometheus conventions: `_total` counters, base-unit
//! suffixes (`_milliseconds`, `_bytes`), one `phase` label on the
//! per-phase histograms. The full table is documented in README.md
//! ("Runtime observability").
//!
//! All instruments are atomics (see sp-obs): bumping them from the submit
//! path or a worker takes no lock and cannot perturb job results — the
//! registry itself is only locked at registration (here, once) and at
//! scrape time.

use scalapart::obs::{Counter, Gauge, Histogram, Registry};
use std::sync::Arc;

#[derive(Clone)]
pub struct ServiceMetrics {
    pub registry: Arc<Registry>,

    pub jobs_submitted: Arc<Counter>,
    pub jobs_completed: Arc<Counter>,
    pub jobs_timeout: Arc<Counter>,
    pub jobs_failed: Arc<Counter>,
    pub rejected_queue_full: Arc<Counter>,
    pub rejected_shutting_down: Arc<Counter>,

    pub cache_hits: Arc<Counter>,
    pub cache_misses: Arc<Counter>,
    pub cache_evictions: Arc<Counter>,
    pub cache_entries: Arc<Gauge>,

    pub queue_depth: Arc<Gauge>,
    pub queue_depth_highwater: Arc<Gauge>,
    pub queue_capacity: Arc<Gauge>,
    pub workers: Arc<Gauge>,
    pub workers_active: Arc<Gauge>,
    pub worker_busy_ms: Arc<Counter>,

    pub queue_wait_ms: Arc<Histogram>,
    pub job_latency_ms: Arc<Histogram>,
    pub job_run_ms: Arc<Histogram>,
    /// Per-phase host wall time; indexed like [`PHASES`].
    pub phase_wall_ms: Vec<Arc<Histogram>>,

    /// Host wall time of each simulated superstep's rank closures, fed by
    /// the machine's superstep hook. Microsecond buckets: a superstep is
    /// orders of magnitude shorter than a job.
    pub superstep_wall_us: Arc<Histogram>,
    /// Percentage of ranks that charged nonzero ops in the most recent
    /// superstep — how full the rank batches ran.
    pub rank_batch_occupancy: Arc<Gauge>,

    /// Streaming sessions currently open (see [`crate::session`]).
    pub sessions_active: Arc<Gauge>,
    /// Graph deltas accepted into session overlays.
    pub session_deltas: Arc<Counter>,
    /// Host wall time of `session_repartition` handling (incremental and
    /// full steps land in the same series; the step report distinguishes
    /// them).
    pub session_repartition_ms: Arc<Histogram>,
    /// Sessions evicted for exceeding the idle TTL.
    pub session_evictions: Arc<Counter>,
    /// Streaming result-cache hits (key: base + delta-chain fingerprint).
    pub session_cache_hits: Arc<Counter>,

    pub uptime_seconds: Arc<Gauge>,
    pub resident_memory_bytes: Arc<Gauge>,
    pub peak_resident_memory_bytes: Arc<Gauge>,
}

/// Pipeline phases in checkpoint order — must match the names
/// `ProfilingObserver` attributes spans to.
pub const PHASES: [&str; 4] = ["coarsen", "embed", "partition", "refine"];

impl ServiceMetrics {
    pub fn new() -> ServiceMetrics {
        let r = Arc::new(Registry::new());
        let lat = Histogram::latency_ms_bounds();
        ServiceMetrics {
            jobs_submitted: r.counter("sp_jobs_submitted_total", "Jobs submitted (including cache hits and rejections)"),
            jobs_completed: r.counter("sp_jobs_completed_total", "Jobs finished with a result (cache hits included)"),
            jobs_timeout: r.counter("sp_jobs_timeout_total", "Jobs cancelled at a deadline"),
            jobs_failed: r.counter("sp_jobs_failed_total", "Jobs that panicked or produced an invalid partition"),
            rejected_queue_full: r.counter_with("sp_jobs_rejected_total", "Submits rejected before queueing", &[("reason", "queue_full")]),
            rejected_shutting_down: r.counter_with("sp_jobs_rejected_total", "Submits rejected before queueing", &[("reason", "shutting_down")]),
            cache_hits: r.counter("sp_cache_hits_total", "Result-cache hits"),
            cache_misses: r.counter("sp_cache_misses_total", "Result-cache misses (jobs enqueued)"),
            cache_evictions: r.counter("sp_cache_evictions_total", "LRU evictions from the result cache"),
            cache_entries: r.gauge("sp_cache_entries", "Entries currently in the result cache"),
            queue_depth: r.gauge("sp_queue_depth", "Jobs waiting in the queue right now"),
            queue_depth_highwater: r.gauge("sp_queue_depth_highwater", "Deepest the queue has been since start"),
            queue_capacity: r.gauge("sp_queue_capacity", "Bounded queue capacity"),
            workers: r.gauge("sp_workers", "Worker threads in the pool"),
            workers_active: r.gauge("sp_workers_active", "Workers currently running a job"),
            worker_busy_ms: r.counter("sp_worker_busy_milliseconds_total", "Total worker milliseconds spent running jobs (divide by workers x uptime for utilization)"),
            queue_wait_ms: r.histogram("sp_queue_wait_milliseconds", "Time from enqueue to worker pickup", &lat),
            job_latency_ms: r.histogram("sp_job_latency_milliseconds", "End-to-end latency of resolved submits", &lat),
            job_run_ms: r.histogram("sp_job_run_milliseconds", "Worker execution time per job (queue wait excluded)", &lat),
            superstep_wall_us: r.histogram(
                "sp_superstep_wall_microseconds",
                "Host wall time per simulated superstep (rank closures only)",
                &[1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 250.0, 500.0, 1000.0, 2500.0, 5000.0, 10000.0, 50000.0],
            ),
            rank_batch_occupancy: r.gauge("sp_rank_batch_occupancy_percent", "Active ranks as a percentage of machine ranks in the last superstep"),
            phase_wall_ms: PHASES
                .iter()
                .map(|p| {
                    r.histogram_with(
                        "sp_phase_wall_milliseconds",
                        "Host wall time per pipeline phase per job",
                        &lat,
                        &[("phase", p)],
                    )
                })
                .collect(),
            sessions_active: r.gauge("sp_sessions_active", "Streaming sessions currently open"),
            session_deltas: r.counter("sp_session_deltas_total", "Graph deltas accepted into session overlays"),
            session_repartition_ms: r.histogram(
                "sp_session_repartition_milliseconds",
                "Host wall time per session_repartition request",
                &lat,
            ),
            session_evictions: r.counter("sp_session_evictions_total", "Sessions evicted after exceeding the idle TTL"),
            session_cache_hits: r.counter("sp_session_cache_hits_total", "Streaming result-cache hits (base + delta-chain fingerprint)"),
            uptime_seconds: r.gauge("sp_uptime_seconds", "Seconds since the service started (sampled at scrape)"),
            resident_memory_bytes: r.gauge("sp_process_resident_memory_bytes", "VmRSS at scrape time (0 where /proc is unavailable)"),
            peak_resident_memory_bytes: r.gauge("sp_process_peak_resident_memory_bytes", "VmHWM at scrape time (0 where /proc is unavailable)"),
            registry: r,
        }
    }

    /// Record one finished profile: feed each phase's wall time into its
    /// labelled histogram series.
    pub fn observe_phases(&self, samples: &[scalapart::obs::PhaseSample]) {
        for s in samples {
            if let Some(i) = PHASES.iter().position(|p| *p == s.phase) {
                self.phase_wall_ms[i].observe(s.wall_ms);
            }
        }
    }

    /// Refresh the scrape-time gauges (uptime, RSS) and render the
    /// Prometheus text exposition.
    pub fn render(&self, uptime_secs: f64) -> String {
        self.uptime_seconds.set(uptime_secs as i64);
        self.resident_memory_bytes
            .set(scalapart::obs::rss::current_rss_bytes().unwrap_or(0) as i64);
        self.peak_resident_memory_bytes
            .set(scalapart::obs::rss::peak_rss_bytes().unwrap_or(0) as i64);
        scalapart::obs::prom::render(&self.registry)
    }
}

impl Default for ServiceMetrics {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exposition_is_lint_clean_from_the_start() {
        let m = ServiceMetrics::new();
        let text = m.render(0.0);
        let errs = scalapart::obs::prom::lint(&text);
        assert!(errs.is_empty(), "{errs:?}");
        assert!(text.contains("# TYPE sp_jobs_submitted_total counter"));
        assert!(text.contains("sp_jobs_rejected_total{reason=\"queue_full\"} 0"));
        assert!(text.contains("sp_phase_wall_milliseconds_bucket{phase=\"embed\""));
        // Streaming-session instruments are registered from the start, so
        // a scrape before any session opens is already lint-clean.
        assert!(text.contains("# TYPE sp_sessions_active gauge"));
        assert!(text.contains("sp_session_deltas_total 0"));
        assert!(text.contains("# TYPE sp_session_repartition_milliseconds histogram"));
    }

    #[test]
    fn phase_observation_lands_in_the_right_series() {
        let m = ServiceMetrics::new();
        m.observe_phases(&[
            scalapart::obs::PhaseSample {
                phase: "embed".into(),
                wall_ms: 5.0,
                rss_bytes: None,
                spans: 1,
            },
            scalapart::obs::PhaseSample {
                phase: "not_a_phase".into(),
                wall_ms: 1.0,
                rss_bytes: None,
                spans: 1,
            },
        ]);
        let i = PHASES.iter().position(|p| *p == "embed").unwrap();
        assert_eq!(m.phase_wall_ms[i].count(), 1);
        let total: u64 = m.phase_wall_ms.iter().map(|h| h.count()).sum();
        assert_eq!(total, 1, "unknown phases are dropped, not mislabelled");
    }
}
