//! End-to-end tests over a real loopback TCP socket: the full
//! frame-protocol path (client → server → queue → worker → cache →
//! response), exercised the way the acceptance criteria describe —
//! concurrent clients, cache determinism, backpressure, deadlines,
//! malformed frames, and graceful drain.

use sp_serve::json::Value;
use sp_serve::net::{Client, Server};
use sp_serve::service::ServeConfig;
use std::sync::Arc;

fn start(cfg: ServeConfig) -> Arc<Server> {
    Server::bind("127.0.0.1:0", cfg).expect("bind loopback")
}

fn submit_req(graph: &str, method: &str, parts: usize, seed: u64) -> String {
    format!(
        "{{\"type\": \"submit\", \"graph\": \"{graph}\", \"method\": \"{method}\", \"parts\": {parts}, \"seed\": {seed}}}"
    )
}

fn parse(reply: &str) -> Value {
    Value::parse(reply).unwrap_or_else(|e| panic!("unparseable reply {reply:?}: {e}"))
}

fn status(v: &Value) -> String {
    v.get("status")
        .and_then(Value::as_str)
        .unwrap_or("<none>")
        .to_string()
}

/// Extract the label vector from an ok response.
fn labels(v: &Value) -> Vec<u64> {
    v.get("result")
        .and_then(|r| r.get("part"))
        .and_then(Value::as_arr)
        .expect("result.part array")
        .iter()
        .map(|x| x.as_u64().expect("integer label"))
        .collect()
}

#[test]
fn eight_concurrent_clients_all_get_valid_partitions() {
    let server = start(ServeConfig {
        workers: 4,
        queue_capacity: 32,
        cache_capacity: 32,
        ranks: 4,
        ..Default::default()
    });
    let addr = server.local_addr();
    let jobs: Vec<(String, usize)> = (0..8)
        .map(|i| {
            let (graph, method) = match i % 4 {
                0 => ("gen:grid:20x20", "rcb"),
                1 => ("gen:grid:24x16", "sp"),
                2 => ("gen:grid:16x16", "parmetis"),
                _ => ("suite:kkt_power", "ptscotch"),
            };
            (submit_req(graph, method, 4, 100 + i), 4usize)
        })
        .collect();
    let handles: Vec<_> = jobs
        .into_iter()
        .map(|(req, parts)| {
            std::thread::spawn(move || {
                let mut c = Client::connect(&addr).unwrap();
                let v = parse(&c.request(&req).unwrap());
                assert_eq!(status(&v), "ok", "reply: {v:?}");
                let part = labels(&v);
                assert!(!part.is_empty());
                assert!(part.iter().all(|&p| (p as usize) < parts));
                // Every part must be non-empty for a valid k-way split.
                for p in 0..parts {
                    assert!(part.iter().any(|&x| x as usize == p), "part {p} empty");
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("client thread panicked");
    }
    let stats = server.service().stats();
    assert_eq!(stats.completed, 8);
    assert_eq!(stats.failed, 0);
    server.shutdown();
    server.wait();
}

#[test]
fn identical_resubmission_is_a_bit_identical_cache_hit() {
    let server = start(ServeConfig {
        workers: 2,
        ranks: 4,
        ..Default::default()
    });
    let addr = server.local_addr();
    let req = submit_req("gen:grid:24x24", "sp", 4, 42);

    let mut c = Client::connect(&addr).unwrap();
    let first = parse(&c.request(&req).unwrap());
    assert_eq!(status(&first), "ok");
    assert_eq!(first.get("cache_hit").and_then(Value::as_bool), Some(false));

    // Resubmit on a *new* connection: same frame, must be flagged as a
    // hit and carry bit-identical labels and fingerprint.
    let mut c2 = Client::connect(&addr).unwrap();
    let second = parse(&c2.request(&req).unwrap());
    assert_eq!(status(&second), "ok");
    assert_eq!(second.get("cache_hit").and_then(Value::as_bool), Some(true));
    assert_eq!(labels(&first), labels(&second));
    assert_eq!(
        first.get("fingerprint").and_then(Value::as_str),
        second.get("fingerprint").and_then(Value::as_str)
    );

    // A different seed is a different job, not a hit.
    let third = parse(
        &c2.request(&submit_req("gen:grid:24x24", "sp", 4, 43))
            .unwrap(),
    );
    assert_eq!(third.get("cache_hit").and_then(Value::as_bool), Some(false));

    let stats = server.service().stats();
    assert_eq!(stats.cache_hits, 1);
    assert_eq!(stats.cache_misses, 2);
    server.shutdown();
    server.wait();
}

#[test]
fn overload_yields_explicit_backpressure_not_hangs() {
    // Queue (2) far below the client count (10): at least one submit must
    // be rejected with retry_after_ms, and every reply must arrive — no
    // hangs, no dropped connections.
    let server = start(ServeConfig {
        workers: 1,
        queue_capacity: 2,
        cache_capacity: 0,
        ranks: 4,
        ..Default::default()
    });
    let addr = server.local_addr();
    let handles: Vec<_> = (0..10)
        .map(|i| {
            let req = submit_req("gen:grid:40x40", "sp", 4, 500 + i);
            std::thread::spawn(move || {
                let mut c = Client::connect(&addr).unwrap();
                let v = parse(&c.request(&req).unwrap());
                match status(&v).as_str() {
                    "ok" => (1u32, 0u32),
                    "rejected" => {
                        assert_eq!(
                            v.get("reason").and_then(Value::as_str),
                            Some("queue_full"),
                            "reply: {v:?}"
                        );
                        let retry = v.get("retry_after_ms").and_then(Value::as_u64);
                        assert!(retry.unwrap_or(0) > 0, "rejection must hint a retry");
                        (0, 1)
                    }
                    other => panic!("unexpected status {other}: {v:?}"),
                }
            })
        })
        .collect();
    let (mut ok, mut rejected) = (0, 0);
    for h in handles {
        let (o, r) = h.join().expect("no client may hang or die");
        ok += o;
        rejected += r;
    }
    assert_eq!(ok + rejected, 10, "every client got exactly one reply");
    assert!(rejected >= 1, "overload must surface as explicit rejection");
    // At minimum the queue's worth of jobs is accepted and completed
    // (more when the worker drains between submits).
    assert!(ok >= 2, "accepted jobs must still be served, got {ok}");
    assert_eq!(server.service().stats().rejected as u32, rejected);
    server.shutdown();
    server.wait();
}

#[test]
fn deadline_expiry_reports_timeout_and_worker_stays_usable() {
    let server = start(ServeConfig {
        workers: 1,
        ranks: 4,
        ..Default::default()
    });
    let addr = server.local_addr();
    let mut c = Client::connect(&addr).unwrap();

    let doomed = "{\"type\": \"submit\", \"graph\": \"gen:grid:48x48\", \"method\": \"sp\", \"parts\": 4, \"seed\": 7, \"deadline_ms\": 0}";
    let v = parse(&c.request(doomed).unwrap());
    assert_eq!(status(&v), "timeout", "reply: {v:?}");

    // The worker was not killed: the very next job on the same connection
    // must succeed.
    let v = parse(
        &c.request(&submit_req("gen:grid:12x12", "rcb", 2, 1))
            .unwrap(),
    );
    assert_eq!(status(&v), "ok", "worker must survive a timeout: {v:?}");

    let stats = server.service().stats();
    assert_eq!(stats.timeouts, 1);
    assert_eq!(stats.completed, 1);
    server.shutdown();
    server.wait();
}

#[test]
fn malformed_frames_get_error_replies_and_the_connection_survives() {
    let server = start(ServeConfig {
        ranks: 4,
        ..Default::default()
    });
    let addr = server.local_addr();
    let mut c = Client::connect(&addr).unwrap();
    for bad in [
        "this is not json",
        "{\"type\": \"launch_missiles\"}",
        "{\"type\": \"submit\"}",
        "{\"type\": \"submit\", \"graph\": \"gen:grid:4x4\", \"method\": \"sp\", \"parts\": 99}",
        "[1, 2, 3]",
    ] {
        let v = parse(&c.request(bad).unwrap());
        assert_eq!(
            v.get("type").and_then(Value::as_str),
            Some("error"),
            "{bad:?} → {v:?}"
        );
        assert!(v.get("message").and_then(Value::as_str).is_some());
    }
    // After five garbage frames, the same connection still serves work.
    let v = parse(
        &c.request(&submit_req("gen:grid:10x10", "rcb", 2, 3))
            .unwrap(),
    );
    assert_eq!(status(&v), "ok");
    server.shutdown();
    server.wait();
}

#[test]
fn stats_request_reflects_service_state() {
    let server = start(ServeConfig {
        ranks: 4,
        ..Default::default()
    });
    let addr = server.local_addr();
    let mut c = Client::connect(&addr).unwrap();
    c.request(&submit_req("gen:grid:16x16", "rcb", 4, 1))
        .unwrap();
    c.request(&submit_req("gen:grid:16x16", "rcb", 4, 1))
        .unwrap();
    let v = parse(&c.request("{\"type\": \"stats\"}").unwrap());
    assert_eq!(v.get("type").and_then(Value::as_str), Some("stats"));
    let s = v.get("stats").expect("stats object");
    assert_eq!(s.get("completed").and_then(Value::as_u64), Some(2));
    assert_eq!(s.get("cache_hits").and_then(Value::as_u64), Some(1));
    assert_eq!(s.get("queue_depth").and_then(Value::as_u64), Some(0));
    let lat = s.get("latency_ms").expect("latency percentiles");
    assert!(lat.get("p50").unwrap().as_f64().unwrap() >= 0.0);
    assert!(lat.get("p99").unwrap().as_f64().unwrap() >= lat.get("p50").unwrap().as_f64().unwrap());
    server.shutdown();
    server.wait();
}

#[test]
fn shutdown_frame_drains_and_stops_the_server() {
    let server = start(ServeConfig {
        workers: 1,
        ranks: 4,
        ..Default::default()
    });
    let addr = server.local_addr();

    // Park some work in the queue, then ask for shutdown from a second
    // connection; queued jobs must still complete (graceful drain).
    let s1 = {
        std::thread::spawn(move || {
            let mut c = Client::connect(&addr).unwrap();
            let v = parse(
                &c.request(&submit_req("gen:grid:32x32", "sp", 4, 11))
                    .unwrap(),
            );
            status(&v)
        })
    };
    // Don't race the drain ahead of the submit: wait until the service
    // has actually accepted s1's job.
    while server.service().stats().submitted < 1 {
        std::thread::sleep(std::time::Duration::from_millis(2));
    }
    let mut c = Client::connect(&addr).unwrap();
    let ack = parse(&c.request("{\"type\": \"shutdown\"}").unwrap());
    assert_eq!(ack.get("type").and_then(Value::as_str), Some("ok"));
    server.wait(); // accept loop exits

    assert_eq!(s1.join().unwrap(), "ok", "in-flight job must complete");
    assert!(server.service().is_closed());

    // New connections are refused once the listener is gone.
    assert!(
        Client::connect(&addr).is_err() || {
            // The OS may still accept into the backlog briefly; a request on
            // such a socket must then fail.
            let mut c = Client::connect(&addr).unwrap();
            c.request("{\"type\": \"stats\"}").is_err()
        }
    );
}

#[test]
fn connection_registry_prunes_closed_connections() {
    // The kill-registry holds a clone of every accepted stream; if closed
    // connections were never removed, each one would pin an open fd until
    // the process hit its ulimit and the shard stopped accepting.
    let server = start(ServeConfig {
        workers: 1,
        queue_capacity: 8,
        cache_capacity: 8,
        ranks: 2,
        ..Default::default()
    });
    let addr = server.local_addr();
    for _ in 0..12 {
        let mut c = Client::connect(&addr).unwrap();
        let resp = c.request("{\"type\": \"ping\"}").unwrap();
        assert_eq!(resp, "{\"type\": \"pong\"}");
        drop(c);
    }
    // Handlers notice the close within their 50 ms read-timeout poll.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
    while server.open_connections() > 0 {
        assert!(
            std::time::Instant::now() < deadline,
            "{} closed connections still registered (fd leak)",
            server.open_connections()
        );
        std::thread::sleep(std::time::Duration::from_millis(10));
    }
    server.shutdown();
    server.wait();
}
