//! Observability end-to-end tests: sp-obs wiring through the service must
//! be useful (metrics agree with reality after a concurrent burst) and
//! passive (watching a job never changes its result).

use sp_serve::json::Value;
use sp_serve::net::{Client, Server};
use sp_serve::service::{JobOutcome, JobSpec, ServeConfig, Service};
use std::sync::Arc;

use scalapart::Method;
use sp_graph::gen::{grid_2d, grid_2d_coords};

fn spec(side: usize, method: Method, seed: u64) -> JobSpec {
    JobSpec {
        graph: Arc::new(grid_2d(side, side)),
        coords: Some(Arc::new(grid_2d_coords(side, side))),
        method,
        parts: 4,
        seed,
        deadline_ms: None,
    }
}

/// Pull the value of a (possibly labelled) sample from Prometheus text.
/// `sp_cache_hits_total` matches `sp_cache_hits_total 3`; a name with a
/// label set matches exactly.
fn sample(prom: &str, series: &str) -> Option<f64> {
    prom.lines().find_map(|l| {
        let l = l.trim();
        if l.starts_with('#') {
            return None;
        }
        let (name, value) = l.rsplit_once(' ')?;
        if name == series {
            value.parse().ok()
        } else {
            None
        }
    })
}

/// The batch both services run in the passivity test: a mix of methods,
/// sizes, and seeds, with one exact repeat to exercise the cache path.
fn batch() -> Vec<JobSpec> {
    vec![
        spec(16, Method::Rcb, 1),
        spec(20, Method::ScalaPart, 7),
        spec(16, Method::ParMetisLike, 3),
        spec(20, Method::ScalaPart, 7), // cache hit
        spec(12, Method::PtScotchLike, 9),
    ]
}

#[test]
fn observation_on_and_off_yields_bit_identical_results() {
    let log_path =
        std::env::temp_dir().join(format!("sp-obs-passivity-{}.jsonl", std::process::id()));
    let _ = std::fs::remove_file(&log_path);

    let base = ServeConfig {
        workers: 2,
        queue_capacity: 16,
        cache_capacity: 16,
        ranks: 4,
        ..Default::default()
    };
    // "Off": no profiling observer wrapped around jobs, no JSONL log.
    let off = Service::start(ServeConfig {
        profile: false,
        obs_log: None,
        ..base.clone()
    });
    // "On": full observability — per-phase profiling plus the event log.
    let on = Service::start(ServeConfig {
        profile: true,
        obs_log: Some(log_path.to_string_lossy().into_owned()),
        ..base
    });

    for (i, job) in batch().into_iter().enumerate() {
        let r_off = off.submit_wait(job.clone()).expect("off accepts");
        let r_on = on.submit_wait(job).expect("on accepts");
        match (&r_off, &r_on) {
            (
                JobOutcome::Done {
                    result: a,
                    cache_hit: ha,
                    ..
                },
                JobOutcome::Done {
                    result: b,
                    cache_hit: hb,
                    ..
                },
            ) => {
                // The whole observable output must match bit for bit:
                // serialized partition, simulated time, cache fingerprint.
                assert_eq!(a.result_json, b.result_json, "job {i}: result bytes differ");
                assert_eq!(
                    a.sim_time.to_bits(),
                    b.sim_time.to_bits(),
                    "job {i}: simulated time differs"
                );
                assert_eq!(a.input_fp, b.input_fp, "job {i}: cache fingerprint differs");
                assert_eq!(ha, hb, "job {i}: cache behaviour diverged");
            }
            _ => panic!("job {i}: outcomes are not both Done"),
        }
    }
    off.shutdown();
    on.shutdown();

    // The observed service really logged: one phase_profile per executed
    // (non-cache-hit) job, and every record carries a job id.
    let log = std::fs::read_to_string(&log_path).expect("obs log written");
    let profiles: Vec<&str> = log
        .lines()
        .filter(|l| l.contains("\"event\":\"phase_profile\""))
        .collect();
    assert_eq!(
        profiles.len(),
        4,
        "one phase_profile per executed job:\n{log}"
    );
    // The ScalaPart job went through the pipeline checkpoints, so its
    // profile attributes wall time to all four named phases; comparator
    // methods (rcb/parmetis/ptscotch) only get totals.
    assert!(
        profiles.iter().any(|l| l.contains("\"phase\":\"coarsen\"")
            && l.contains("\"phase\":\"embed\"")
            && l.contains("\"phase\":\"partition\"")
            && l.contains("\"phase\":\"refine\"")),
        "no fully-attributed ScalaPart profile:\n{log}"
    );
    for line in log.lines().filter(|l| !l.is_empty()) {
        let v = Value::parse(line).unwrap_or_else(|e| panic!("bad JSONL {line:?}: {e}"));
        assert!(
            v.get("job").and_then(Value::as_u64).is_some(),
            "no job id: {line}"
        );
        assert!(v.get("ts_ms").is_some(), "no timestamp: {line}");
    }
    let _ = std::fs::remove_file(&log_path);
}

#[test]
fn metrics_stay_consistent_under_eight_concurrent_clients() {
    let server = Server::bind(
        "127.0.0.1:0",
        ServeConfig {
            workers: 3,
            queue_capacity: 32,
            cache_capacity: 32,
            ranks: 4,
            ..Default::default()
        },
    )
    .expect("bind loopback");
    let addr = server.local_addr();

    // 8 clients, 6 distinct inputs → at least 2 submissions race or land
    // on warm cache entries. No deadlines, so every accepted job
    // completes.
    let handles: Vec<_> = (0..8)
        .map(|i| {
            std::thread::spawn(move || {
                let (g, m) = match i % 6 {
                    0 => ("gen:grid:16x16", "rcb"),
                    1 => ("gen:grid:20x20", "sp"),
                    2 => ("gen:grid:12x18", "parmetis"),
                    3 => ("gen:grid:18x12", "ptscotch"),
                    4 => ("gen:grid:14x14", "rcb"),
                    _ => ("gen:grid:16x16", "rcb"), // repeat of case 0
                };
                let req = format!(
                    "{{\"type\": \"submit\", \"graph\": \"{g}\", \"method\": \"{m}\", \"parts\": 4, \"seed\": 5}}"
                );
                let mut c = Client::connect(&addr).unwrap();
                let reply = c.request(&req).unwrap();
                assert!(reply.contains("\"status\": \"ok\""), "reply: {reply}");
            })
        })
        .collect();
    for h in handles {
        h.join().expect("client thread");
    }

    // Scrape after the burst has fully drained.
    let prom = server.service().prometheus();

    // The exposition must be lint-clean (same linter CI uses).
    let problems = scalapart::obs::prom::lint(&prom);
    assert!(problems.is_empty(), "promlint: {problems:?}\n{prom}");

    let get = |s: &str| sample(&prom, s).unwrap_or_else(|| panic!("missing series {s}\n{prom}"));

    // Conservation: every accepted job either hit the cache at submit or
    // was enqueued as a miss, and (with no deadlines) all completed.
    let submitted = get("sp_jobs_submitted_total");
    let completed = get("sp_jobs_completed_total");
    let hits = get("sp_cache_hits_total");
    let misses = get("sp_cache_misses_total");
    assert_eq!(submitted, 8.0);
    assert_eq!(completed, 8.0);
    assert_eq!(
        hits + misses,
        completed,
        "hits {hits} + misses {misses} != completed"
    );

    // Queue fully drained; the high-water mark never exceeds capacity and
    // is at least the final depth.
    assert_eq!(get("sp_queue_depth"), 0.0);
    let hwm = get("sp_queue_depth_highwater");
    assert!((0.0..=32.0).contains(&hwm), "hwm {hwm}");
    assert_eq!(get("sp_workers_active"), 0.0);

    // Latency histograms saw every completed job.
    assert_eq!(get("sp_job_latency_milliseconds_count"), completed);
    // The wait histogram only covers enqueued (missed) jobs.
    assert_eq!(get("sp_queue_wait_milliseconds_count"), misses);

    // Superstep telemetry flowed from the machine's batched executor: the
    // ScalaPart jobs in the burst drive the simulated machine through many
    // supersteps, each observing one wall-time sample and refreshing the
    // rank-batch occupancy gauge.
    let supersteps = get("sp_superstep_wall_microseconds_count");
    assert!(
        supersteps > 0.0,
        "no superstep samples reached the registry\n{prom}"
    );
    let occ = get("sp_rank_batch_occupancy_percent");
    assert!(
        (0.0..=100.0).contains(&occ),
        "occupancy {occ} out of range\n{prom}"
    );

    // The JSON stats snapshot and Prometheus view must agree.
    let stats = server.service().stats();
    assert_eq!(stats.completed as f64, completed);
    assert_eq!(stats.cache_hits as f64, hits);
    assert_eq!(stats.queue_depth, 0);
    assert!(stats.queue_depth_hwm as f64 >= 0.0);

    server.shutdown();
    server.wait();
}

#[test]
fn metrics_frame_returns_valid_prometheus_text() {
    let server = Server::bind(
        "127.0.0.1:0",
        ServeConfig {
            workers: 1,
            queue_capacity: 4,
            cache_capacity: 4,
            ranks: 4,
            ..Default::default()
        },
    )
    .expect("bind loopback");
    let addr = server.local_addr();
    let mut c = Client::connect(&addr).unwrap();
    let reply = c
        .request("{\"type\": \"submit\", \"graph\": \"gen:grid:12x12\", \"method\": \"rcb\", \"parts\": 2, \"seed\": 1}")
        .unwrap();
    assert!(reply.contains("\"status\": \"ok\""));

    let reply = c.request("{\"type\": \"metrics\"}").unwrap();
    let v = Value::parse(&reply).expect("frame parses");
    assert_eq!(v.get("type").and_then(Value::as_str), Some("metrics"));
    assert_eq!(
        v.get("content_type").and_then(Value::as_str),
        Some("text/plain; version=0.0.4")
    );
    let body = v
        .get("body")
        .and_then(Value::as_str)
        .expect("body")
        .to_string();
    assert!(scalapart::obs::prom::lint(&body).is_empty(), "{body}");
    assert_eq!(sample(&body, "sp_jobs_completed_total"), Some(1.0));
    // The superstep instruments are part of the scrape surface even when
    // the method exercised few supersteps.
    assert!(
        body.contains("# TYPE sp_superstep_wall_microseconds histogram"),
        "superstep histogram missing from exposition"
    );
    assert!(
        body.contains("sp_rank_batch_occupancy_percent"),
        "occupancy gauge missing from exposition"
    );

    server.shutdown();
    server.wait();
}
