//! Distributed-serving tests over real loopback sockets: failover under
//! concurrent load, adversarial shard behaviour, cache warming, and the
//! determinism contract — a response's result bytes must not depend on
//! which shard served it, whether it was a cache hit, or whether the job
//! was replayed after a mid-stream shard kill.

use sp_serve::json::Value;
use sp_serve::net::{Client, Server};
use sp_serve::proto::{extract_raw_field, read_frame};
use sp_serve::router::{Router, RouterConfig, RouterServer};
use sp_serve::service::ServeConfig;
use std::net::TcpListener;
use std::sync::Arc;
use std::time::Duration;

fn shard_cfg(workers: usize) -> ServeConfig {
    ServeConfig {
        workers,
        queue_capacity: 32,
        cache_capacity: 32,
        ranks: 4,
        ..Default::default()
    }
}

fn start_shard(workers: usize) -> Arc<Server> {
    Server::bind("127.0.0.1:0", shard_cfg(workers)).expect("bind shard")
}

/// Router over the given shards, health probing off — the tests drive
/// failure detection deterministically through the forward path.
fn start_router(shards: &[(&str, &Arc<Server>)]) -> Arc<RouterServer> {
    let spec: Vec<(String, String)> = shards
        .iter()
        .map(|(n, s)| (n.to_string(), s.local_addr().to_string()))
        .collect();
    let router = Router::new(
        RouterConfig {
            health_interval_ms: 0,
            forward_timeout_ms: 60_000,
            ..Default::default()
        },
        &spec,
    )
    .expect("router");
    RouterServer::bind("127.0.0.1:0", router).expect("bind router")
}

fn submit_req(graph: &str, method: &str, parts: usize, seed: u64) -> String {
    format!(
        "{{\"type\": \"submit\", \"graph\": \"{graph}\", \"method\": \"{method}\", \"parts\": {parts}, \"seed\": {seed}}}"
    )
}

/// The determinism-relevant spans of an ok response, as raw bytes.
fn identity_spans(resp: &str) -> (String, String, String) {
    let get = |f: &str| {
        extract_raw_field(resp, f)
            .unwrap_or_else(|| panic!("response lacks {f}: {resp}"))
            .to_string()
    };
    (get("result"), get("sim_time"), get("fingerprint"))
}

#[test]
fn failover_midstream_is_invisible_to_all_eight_clients() {
    // One slow worker per shard so the kill lands while jobs are queued.
    let a = start_shard(1);
    let b = start_shard(1);
    let rs = start_router(&[("a", &a), ("b", &b)]);
    let raddr = rs.local_addr();

    // Oracle: a single standalone shard with the same rank count serves
    // the same jobs; its result bytes are the expectation.
    let oracle = start_shard(2);
    let jobs: Vec<String> = (0..8)
        .map(|i| {
            submit_req(
                "gen:grid:26x26",
                if i % 2 == 0 { "sp" } else { "rcb" },
                4,
                i,
            )
        })
        .collect();
    let expected: Vec<(String, String, String)> = jobs
        .iter()
        .map(|req| {
            let mut c = Client::connect(&oracle.local_addr()).unwrap();
            let resp = c.request(req).unwrap();
            assert!(resp.contains("\"status\": \"ok\""), "{resp}");
            identity_spans(&resp)
        })
        .collect();

    // Eight concurrent clients through the router…
    let clients: Vec<_> = jobs
        .iter()
        .cloned()
        .map(|req| {
            std::thread::spawn(move || {
                let mut c = Client::connect(&raddr).unwrap();
                c.request(&req).unwrap()
            })
        })
        .collect();
    // …and a SIGKILL-equivalent on shard a while the queue is busy.
    std::thread::sleep(Duration::from_millis(150));
    a.kill();

    for (i, h) in clients.into_iter().enumerate() {
        let resp = h.join().expect("client thread");
        assert!(
            resp.contains("\"status\": \"ok\""),
            "client {i} did not get a result: {resp}"
        );
        assert!(
            !resp.contains("route_tag"),
            "router must strip its internal tag: {resp}"
        );
        assert_eq!(
            identity_spans(&resp),
            expected[i],
            "client {i}: response bytes depend on serving shard"
        );
    }

    // The up→down transition was observed by up to eight clients and
    // counted exactly once.
    let router = rs.router();
    assert_eq!(router.failovers(), 1, "failovers must count transitions");
    let prom = router.prometheus();
    assert!(
        prom.contains("sp_shard_failovers_total 1"),
        "exposition: {prom}"
    );
    assert!(prom.contains("sp_shard_up{shard=\"a\"} 0"), "{prom}");
    assert!(prom.contains("sp_shard_up{shard=\"b\"} 1"), "{prom}");

    rs.shutdown();
    // kill() is abrupt and does not join the killed shard's threads;
    // reap them explicitly so the test leaks nothing.
    a.service().shutdown();
    a.wait();
    b.shutdown();
    oracle.shutdown();
}

/// A fake shard: accepts connections and answers every frame with
/// whatever `reply` produces (raw bytes, written as-is).
fn fake_shard(reply: impl Fn(&[u8]) -> Vec<u8> + Send + 'static) -> std::net::SocketAddr {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    std::thread::spawn(move || {
        while let Ok((mut stream, _)) = listener.accept() {
            let Ok(Some(req)) = read_frame(&mut stream) else {
                continue;
            };
            use std::io::Write as _;
            let bytes = reply(&req);
            let _ = stream.write_all(&bytes);
            let _ = stream.flush();
        }
    });
    addr
}

fn router_over(addr: std::net::SocketAddr) -> Arc<RouterServer> {
    router_over_cfg(addr, 2_000)
}

fn router_over_cfg(addr: std::net::SocketAddr, forward_timeout_ms: u64) -> Arc<RouterServer> {
    let router = Router::new(
        RouterConfig {
            health_interval_ms: 0,
            forward_timeout_ms,
            ..Default::default()
        },
        &[("fake".to_string(), addr.to_string())],
    )
    .unwrap();
    RouterServer::bind("127.0.0.1:0", router).unwrap()
}

fn typed_code(resp: &str) -> String {
    let v = Value::parse(resp).unwrap_or_else(|e| panic!("unparseable {resp:?}: {e}"));
    assert_eq!(
        v.get("type").and_then(Value::as_str),
        Some("error"),
        "{resp}"
    );
    v.get("code")
        .and_then(Value::as_str)
        .unwrap_or_else(|| panic!("error lacks code: {resp}"))
        .to_string()
}

#[test]
fn shard_with_oversized_length_prefix_yields_typed_error_not_hang() {
    // 4 GiB length prefix: the router must refuse to allocate, demote the
    // shard, and (with no survivors) answer a typed error promptly.
    let addr = fake_shard(|_| 0xFFFF_FFFFu32.to_be_bytes().to_vec());
    let rs = router_over(addr);
    let mut c = Client::connect(&rs.local_addr()).unwrap();
    let resp = c.request(&submit_req("gen:grid:8x8", "rcb", 2, 1)).unwrap();
    assert_eq!(typed_code(&resp), "no_shards");
    rs.shutdown();
}

#[test]
fn shard_truncating_its_frame_yields_typed_error_not_hang() {
    // Promise 64 bytes, deliver 9, close: mid-frame EOF on the router's
    // side of the forward.
    let addr = fake_shard(|_| {
        let mut b = 64u32.to_be_bytes().to_vec();
        b.extend_from_slice(b"{\"half\":");
        b
    });
    let rs = router_over(addr);
    let mut c = Client::connect(&rs.local_addr()).unwrap();
    let resp = c.request(&submit_req("gen:grid:8x8", "rcb", 2, 2)).unwrap();
    assert_eq!(typed_code(&resp), "no_shards");
    rs.shutdown();
}

#[test]
fn shard_answering_wrong_route_tag_yields_route_mismatch() {
    // A well-formed result frame for the wrong job: protocol violation,
    // answered with a typed error and never replayed.
    let addr = fake_shard(|_| {
        let body = "{\"type\": \"result\", \"status\": \"ok\", \"job\": 1, \"route_tag\": 424242}";
        let mut b = (body.len() as u32).to_be_bytes().to_vec();
        b.extend_from_slice(body.as_bytes());
        b
    });
    let rs = router_over(addr);
    let mut c = Client::connect(&rs.local_addr()).unwrap();
    let resp = c.request(&submit_req("gen:grid:8x8", "rcb", 2, 3)).unwrap();
    assert_eq!(typed_code(&resp), "route_mismatch");
    let prom = rs.router().prometheus();
    assert!(
        prom.contains("sp_route_errors_total{code=\"route_mismatch\"} 1"),
        "{prom}"
    );
    rs.shutdown();
}

#[test]
fn slow_shard_times_out_without_being_demoted() {
    // A shard that takes the job but exceeds the forward budget may
    // legitimately still be computing: the client gets a typed timeout,
    // and the shard must NOT be marked dead (one slow job must not
    // cascade a healthy fleet into no_shards — with health probing off,
    // permanently).
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    std::thread::spawn(move || {
        while let Ok((mut stream, _)) = listener.accept() {
            let _ = read_frame(&mut stream);
            // Hold the connection open well past the router's budget.
            std::thread::sleep(Duration::from_secs(3));
        }
    });
    let rs = router_over_cfg(addr, 250);
    let mut c = Client::connect(&rs.local_addr()).unwrap();
    let resp = c.request(&submit_req("gen:grid:8x8", "rcb", 2, 6)).unwrap();
    assert_eq!(typed_code(&resp), "forward_timeout");
    let router = rs.router();
    assert_eq!(router.failovers(), 0, "a timeout is not shard death");
    let prom = router.prometheus();
    assert!(prom.contains("sp_shard_up{shard=\"fake\"} 1"), "{prom}");
    assert!(
        prom.contains("sp_route_errors_total{code=\"forward_timeout\"} 1"),
        "{prom}"
    );
    rs.shutdown();
}

#[test]
fn untagged_shard_error_is_relayed_not_mismatched() {
    // The shard's frame-decode error path replies without echoing the
    // route tag (net.rs answers before a tag exists). That reply is
    // deterministic — every shard would say the same — so the router must
    // relay it, not misread the missing tag as a route mismatch.
    let body = "{\"type\": \"error\", \"message\": \"bad JSON: oops\"}";
    let addr = fake_shard(move |_| {
        let mut b = (body.len() as u32).to_be_bytes().to_vec();
        b.extend_from_slice(body.as_bytes());
        b
    });
    let rs = router_over(addr);
    let mut c = Client::connect(&rs.local_addr()).unwrap();
    let resp = c.request(&submit_req("gen:grid:8x8", "rcb", 2, 7)).unwrap();
    assert_eq!(resp, body, "untagged error must be relayed verbatim");
    let prom = rs.router().prometheus();
    assert!(
        prom.contains("sp_route_errors_total{code=\"route_mismatch\"} 0"),
        "{prom}"
    );
    assert!(prom.contains("sp_shard_up{shard=\"fake\"} 1"), "{prom}");
    rs.shutdown();
}

#[test]
fn frame_near_limit_is_rejected_locally_not_failed_over() {
    // A client frame within tag-width of MAX_FRAME would only exceed the
    // limit after the router injects route_tag. That is a local
    // condition: reject with a typed error instead of forwarding (where
    // our own write_frame would fail and wrongly demote the shard).
    use sp_serve::proto::MAX_FRAME;
    let addr = fake_shard(|_| panic!("an oversize-after-tagging frame must never be forwarded"));
    let rs = router_over(addr);
    let prefix = "{\"type\": \"submit\", \"graph\": \"gen:grid:8x8\", \"method\": \"rcb\", \"parts\": 2, \"seed\": 1, \"pad\": \"";
    let suffix = "\"}";
    let pad = "x".repeat(MAX_FRAME as usize - prefix.len() - suffix.len());
    let req = format!("{prefix}{pad}{suffix}");
    assert_eq!(req.len(), MAX_FRAME as usize, "frame itself must be legal");
    let mut c = Client::connect(&rs.local_addr()).unwrap();
    let resp = c.request(&req).unwrap();
    assert_eq!(typed_code(&resp), "frame_too_large");
    let router = rs.router();
    assert_eq!(router.failovers(), 0, "local rejection must not demote");
    let prom = router.prometheus();
    assert!(prom.contains("sp_shard_up{shard=\"fake\"} 1"), "{prom}");
    rs.shutdown();
}

#[test]
fn clients_may_not_set_route_tag_themselves() {
    let shard = start_shard(1);
    let rs = start_router(&[("s", &shard)]);
    let mut c = Client::connect(&rs.local_addr()).unwrap();
    let mut req = submit_req("gen:grid:8x8", "rcb", 2, 4);
    req.truncate(req.len() - 1);
    req.push_str(", \"route_tag\": 7}");
    let resp = c.request(&req).unwrap();
    assert_eq!(typed_code(&resp), "route_mismatch");
    rs.shutdown();
    shard.shutdown();
}

#[test]
fn joining_shard_is_warmed_and_replays_identical_bytes() {
    let a = start_shard(2);
    let rs = start_router(&[("a", &a)]);
    let raddr = rs.local_addr();

    // Populate shard a's cache through the router.
    let req = submit_req("gen:grid:16x16", "sp", 4, 11);
    let original = {
        let mut c = Client::connect(&raddr).unwrap();
        let resp = c.request(&req).unwrap();
        assert!(resp.contains("\"status\": \"ok\""), "{resp}");
        identity_spans(&resp)
    };

    // A fresh shard joins; the router streams hot entries from survivors.
    let b = start_shard(2);
    let warmed = rs
        .router()
        .rejoin("b", &b.local_addr().to_string())
        .expect("rejoin");
    assert!(warmed >= 1, "no cache entries streamed to the joiner");

    // The joiner now answers the same job from its warmed cache with the
    // donor's exact bytes.
    let mut direct = Client::connect(&b.local_addr()).unwrap();
    let resp = direct.request(&req).unwrap();
    let v = Value::parse(&resp).unwrap();
    assert_eq!(
        v.get("cache_hit").and_then(Value::as_bool),
        Some(true),
        "warmed entry must hit: {resp}"
    );
    assert_eq!(identity_spans(&resp), original);
    let prom = rs.router().prometheus();
    assert!(prom.contains("sp_shard_joins_total 1"), "{prom}");

    rs.shutdown();
    a.shutdown();
    b.shutdown();
}

#[test]
fn router_stats_merge_router_and_shard_views() {
    let a = start_shard(2);
    let b = start_shard(2);
    let rs = start_router(&[("a", &a), ("b", &b)]);
    let mut c = Client::connect(&rs.local_addr()).unwrap();
    let ok = c
        .request(&submit_req("gen:grid:10x10", "rcb", 2, 5))
        .unwrap();
    assert!(ok.contains("\"status\": \"ok\""), "{ok}");
    let resp = c.request("{\"type\": \"stats\"}").unwrap();
    let v = Value::parse(&resp).unwrap_or_else(|e| panic!("bad stats {resp:?}: {e}"));
    let router = v.get("router").expect("router section");
    assert_eq!(router.get("shards").and_then(Value::as_u64), Some(2));
    assert_eq!(router.get("shards_up").and_then(Value::as_u64), Some(2));
    let shards = v.get("shards").and_then(Value::as_arr).expect("shard list");
    assert_eq!(shards.len(), 2);
    let submitted: u64 = shards
        .iter()
        .map(|s| {
            assert_eq!(s.get("up").and_then(Value::as_bool), Some(true));
            s.get("stats")
                .and_then(|st| st.get("submitted"))
                .and_then(Value::as_u64)
                .expect("per-shard stats")
        })
        .sum();
    assert_eq!(submitted, 1, "exactly one shard saw the job");
    rs.shutdown();
    a.shutdown();
    b.shutdown();
}
