//! Streaming-session end-to-end tests over real loopback sockets: the
//! full open → delta → repartition → close lifecycle against a single
//! shard, and the distributed contract — every frame of a session hashes
//! to one shard, and a mid-session shard kill is invisible because the
//! router replays the session journal on the survivor, which reproduces
//! every response byte-for-byte.

use sp_serve::json::Value;
use sp_serve::net::{Client, Server};
use sp_serve::router::{Router, RouterConfig, RouterServer};
use sp_serve::service::ServeConfig;
use std::sync::Arc;

fn shard_cfg() -> ServeConfig {
    ServeConfig {
        workers: 1,
        queue_capacity: 8,
        cache_capacity: 8,
        ranks: 4,
        ..Default::default()
    }
}

fn start_shard() -> Arc<Server> {
    Server::bind("127.0.0.1:0", shard_cfg()).expect("bind shard")
}

fn start_router(shards: &[(&str, &Arc<Server>)]) -> Arc<RouterServer> {
    let spec: Vec<(String, String)> = shards
        .iter()
        .map(|(n, s)| (n.to_string(), s.local_addr().to_string()))
        .collect();
    let router = Router::new(
        RouterConfig {
            health_interval_ms: 0,
            forward_timeout_ms: 60_000,
            ..Default::default()
        },
        &spec,
    )
    .expect("router");
    RouterServer::bind("127.0.0.1:0", router).expect("bind router")
}

/// The scripted session every test replays: open on a grid, three delta
/// batches (edge churn, weight drift, coordinate drift), a repartition
/// after each, then close.
fn session_script(name: &str) -> Vec<String> {
    let open = format!(
        r#"{{"type": "session_open", "session": "{name}", "graph": "gen:grid:12x12", "seed": 3}}"#
    );
    let batches = [
        r#"[{"op": "remove_edge", "u": 0, "v": 1}, {"op": "add_edge", "u": 0, "v": 13, "w": 2.0}, {"op": "add_edge", "u": 5, "v": 30, "w": 0.5}]"#,
        r#"[{"op": "set_vwgt", "v": 7, "w": 4.0}, {"op": "set_vwgt", "v": 100, "w": 3.5}, {"op": "set_vwgt", "v": 55, "w": 2.25}]"#,
        r#"[{"op": "shift_coord", "v": 40, "dx": 0.4, "dy": -0.2}, {"op": "shift_coord", "v": 41, "dx": 0.4, "dy": -0.2}, {"op": "remove_edge", "u": 40, "v": 41}]"#,
    ];
    let mut frames = vec![open];
    for b in batches {
        frames.push(format!(
            r#"{{"type": "session_delta", "session": "{name}", "deltas": {b}}}"#
        ));
        frames.push(format!(
            r#"{{"type": "session_repartition", "session": "{name}"}}"#
        ));
    }
    frames.push(format!(
        r#"{{"type": "session_close", "session": "{name}"}}"#
    ));
    frames
}

fn parsed(resp: &str) -> Value {
    Value::parse(resp).unwrap_or_else(|e| panic!("unparseable response {resp:?}: {e}"))
}

#[test]
fn loopback_session_lifecycle_end_to_end() {
    let server = start_shard();
    let mut c = Client::connect(&server.local_addr()).unwrap();

    let frames = session_script("lifecycle");
    let open = parsed(&c.request(&frames[0]).unwrap());
    assert_eq!(open.get("status").and_then(Value::as_str), Some("open"));
    assert_eq!(open.get("n").and_then(Value::as_u64), Some(144));
    assert!(open.get("base_fp").is_some() && open.get("partition_fp").is_some());
    assert_eq!(server.sessions().active(), 1);
    assert_eq!(server.service().metrics().sessions_active.get(), 1);

    let mut chain_fps = vec![open.get("chain_fp").unwrap().as_str().unwrap().to_string()];
    for (i, pair) in frames[1..7].chunks(2).enumerate() {
        let delta = parsed(&c.request(&pair[0]).unwrap());
        assert_eq!(
            delta.get("status").and_then(Value::as_str),
            Some("delta"),
            "batch {i}"
        );
        assert_eq!(delta.get("applied").and_then(Value::as_u64), Some(3));
        assert_eq!(
            delta.get("deltas_total").and_then(Value::as_u64),
            Some(3 * (i as u64 + 1))
        );
        let rep = parsed(&c.request(&pair[1]).unwrap());
        assert_eq!(
            rep.get("status").and_then(Value::as_str),
            Some("repartition")
        );
        assert_eq!(rep.get("step").and_then(Value::as_u64), Some(i as u64 + 1));
        assert!(
            rep.get("migration_volume")
                .and_then(Value::as_u64)
                .is_some(),
            "step must report its migration volume"
        );
        assert!(rep.get("cut_after").and_then(Value::as_f64).is_some());
        // The chain fingerprint strictly advances: every batch and every
        // repartition marker lands in it.
        let fp = rep.get("chain_fp").unwrap().as_str().unwrap().to_string();
        assert!(!chain_fps.contains(&fp), "chain fingerprint repeated");
        chain_fps.push(fp);
    }

    let close = parsed(&c.request(&frames[7]).unwrap());
    assert_eq!(close.get("status").and_then(Value::as_str), Some("closed"));
    assert_eq!(close.get("deltas_total").and_then(Value::as_u64), Some(9));
    assert_eq!(close.get("repartitions").and_then(Value::as_u64), Some(3));
    assert_eq!(server.sessions().active(), 0);

    // The session instruments are visible in the shard's own scrape.
    let m = parsed(&c.request(r#"{"type": "metrics"}"#).unwrap());
    let body = m.get("body").and_then(Value::as_str).expect("metrics body");
    assert!(body.contains("sp_sessions_active 0"), "scrape: {body}");
    assert!(body.contains("sp_session_deltas_total 9"), "scrape: {body}");
    assert!(
        body.contains("sp_session_repartition_milliseconds_count 3"),
        "scrape: {body}"
    );

    server.shutdown();
}

#[test]
fn unknown_session_and_double_open_are_typed_errors_over_the_wire() {
    let server = start_shard();
    let mut c = Client::connect(&server.local_addr()).unwrap();
    let resp = parsed(
        &c.request(r#"{"type": "session_repartition", "session": "nope"}"#)
            .unwrap(),
    );
    assert_eq!(resp.get("code").and_then(Value::as_str), Some("no_session"));

    let open = r#"{"type": "session_open", "session": "dup", "graph": "gen:grid:6x6"}"#;
    assert!(c.request(open).unwrap().contains("\"status\": \"open\""));
    let again = parsed(&c.request(open).unwrap());
    assert_eq!(
        again.get("code").and_then(Value::as_str),
        Some("session_exists")
    );
    server.shutdown();
}

#[test]
fn router_pins_sessions_and_replays_them_byte_identical_after_a_kill() {
    // Oracle: the same scripted session against a standalone shard. Its
    // responses are the byte-level expectation for the routed run.
    let oracle = start_shard();
    let frames = session_script("fleet");
    let expected: Vec<String> = {
        let mut c = Client::connect(&oracle.local_addr()).unwrap();
        frames.iter().map(|f| c.request(f).unwrap()).collect()
    };
    oracle.shutdown();

    let a = start_shard();
    let b = start_shard();
    let rs = start_router(&[("a", &a), ("b", &b)]);
    let mut c = Client::connect(&rs.local_addr()).unwrap();

    // Open + first two delta/repartition rounds through the router.
    let mut got: Vec<String> = frames[..5].iter().map(|f| c.request(f).unwrap()).collect();

    // Affinity: exactly one shard holds the session.
    let on_a = a.sessions().active();
    let on_b = b.sessions().active();
    assert_eq!(
        (on_a + on_b, on_a * on_b),
        (1, 0),
        "session must live on exactly one shard (a: {on_a}, b: {on_b})"
    );

    // SIGKILL-equivalent on the owner, fully reaped so new connections
    // are refused rather than stranded in a dead backlog.
    let (owner, survivor) = if on_a == 1 { (&a, &b) } else { (&b, &a) };
    owner.kill();
    owner.service().shutdown();
    owner.wait();

    // The rest of the session proceeds as if nothing happened: the
    // router replays the journal on the survivor, then forwards.
    got.extend(frames[5..].iter().map(|f| c.request(f).unwrap()));

    assert_eq!(got.len(), expected.len());
    for (i, (g, e)) in got.iter().zip(&expected).enumerate() {
        assert_eq!(
            g, e,
            "frame {i}: routed response differs from the standalone oracle"
        );
    }
    assert_eq!(
        rs.router().failovers(),
        1,
        "the kill must be detected exactly once"
    );
    // The close at the end of the script removed the replayed session
    // from the survivor too.
    assert_eq!(survivor.sessions().active(), 0);

    rs.shutdown();
    survivor.shutdown();
}
