//! Offline stand-in for `proptest`: strategy helper functions type-check,
//! but the `proptest!` macro expands to nothing, so property tests are
//! SKIPPED (not run) under this stub.

/// Swallows the whole property-test block.
#[macro_export]
macro_rules! proptest {
    ($($t:tt)*) => {};
}

pub mod strategy {
    use std::marker::PhantomData;
    use std::ops::Range;

    pub trait Strategy: Sized {
        type Value;

        fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F, U> {
            Map(self, f, PhantomData)
        }

        fn prop_filter_map<U, F: Fn(Self::Value) -> Option<U>>(
            self,
            _reason: &'static str,
            f: F,
        ) -> FilterMap<Self, F, U> {
            FilterMap(self, f, PhantomData)
        }
    }

    pub struct Map<S, F, U>(S, F, PhantomData<U>);

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F, U> {
        type Value = U;
    }

    pub struct FilterMap<S, F, U>(S, F, PhantomData<U>);

    impl<S: Strategy, U, F: Fn(S::Value) -> Option<U>> Strategy for FilterMap<S, F, U> {
        type Value = U;
    }

    macro_rules! range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
            }
        )*};
    }

    range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

    impl<A: Strategy, B: Strategy> Strategy for (A, B) {
        type Value = (A::Value, B::Value);
    }

    impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
        type Value = (A::Value, B::Value, C::Value);
    }

    impl<A: Strategy, B: Strategy, C: Strategy, D: Strategy> Strategy for (A, B, C, D) {
        type Value = (A::Value, B::Value, C::Value, D::Value);
    }

    /// `Just(value)`.
    pub struct Just<T>(pub T);

    impl<T> Strategy for Just<T> {
        type Value = T;
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use std::marker::PhantomData;
    use std::ops::Range;

    pub struct VecStrategy<S>(S, PhantomData<()>);

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
    }

    pub fn vec<S: Strategy>(element: S, _size: Range<usize>) -> VecStrategy<S> {
        VecStrategy(element, PhantomData)
    }
}

/// Minimal `ProptestConfig` so `ProptestConfig { cases: N, ..default() }`
/// would type-check if referenced outside the macro.
#[derive(Clone, Debug, Default)]
pub struct ProptestConfig {
    pub cases: u32,
}

pub mod prelude {
    pub use crate::collection;
    pub use crate::proptest;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::ProptestConfig;

    /// `prop::collection::vec(...)` paths from the real prelude.
    pub mod prop {
        pub use crate::collection;
        pub use crate::strategy;
    }
}
