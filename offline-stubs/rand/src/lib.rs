//! Offline stand-in for `rand` 0.9 covering only the API surface the
//! ScalaPart workspace uses. Deterministic (splitmix64), seedable, but a
//! different stream than the real crate.

use std::ops::{Range, RangeInclusive};

pub trait RngCore {
    fn next_u64(&mut self) -> u64;
}

pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sampling from a range type, mirroring `rand::distr::uniform::SampleRange`.
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

pub trait Random: Sized {
    fn random_from<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

pub trait Rng: RngCore {
    fn random<T: Random>(&mut self) -> T {
        T::random_from(self)
    }

    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    fn random_bool(&mut self, p: f64) -> bool {
        f64::random_from(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

fn to_unit_f64(x: u64) -> f64 {
    // 53 high bits -> [0, 1).
    (x >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

impl Random for u64 {
    fn random_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Random for u32 {
    fn random_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Random for f64 {
    fn random_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        to_unit_f64(rng.next_u64())
    }
}

impl Random for bool {
    fn random_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128) % span;
                (self.start as i128 + off as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let off = (rng.next_u64() as u128) % span;
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}

int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                self.start + (self.end - self.start) * (to_unit_f64(rng.next_u64()) as $t)
            }
        }
    )*};
}

float_range!(f32, f64);

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// splitmix64 — a decent small deterministic generator.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut r = StdRng { state: seed ^ 0x5DEE_CE66_D1CE_4E5B };
            // Warm up so small seeds diverge.
            let _ = r.next_u64();
            r
        }
    }
}

pub mod seq {
    use super::Rng;

    pub trait SliceRandom {
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            // Fisher–Yates.
            for i in (1..self.len()).rev() {
                let j = rng.random_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}
