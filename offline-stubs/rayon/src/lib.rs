//! Offline sequential stand-in for `rayon`: the parallel-iterator entry
//! points return plain std iterators, so `.enumerate().map().collect()`
//! chains compile unchanged and run sequentially.

pub mod iter {
    pub trait IntoParallelIterator {
        type Item;
        type Iter: Iterator<Item = Self::Item>;
        fn into_par_iter(self) -> Self::Iter;
    }

    impl<I: IntoIterator> IntoParallelIterator for I {
        type Item = I::Item;
        type Iter = I::IntoIter;
        fn into_par_iter(self) -> Self::Iter {
            self.into_iter()
        }
    }

    pub trait IntoParallelRefMutIterator<'a> {
        type Item: 'a;
        type Iter: Iterator<Item = Self::Item>;
        fn par_iter_mut(&'a mut self) -> Self::Iter;
    }

    impl<'a, T: 'a> IntoParallelRefMutIterator<'a> for [T] {
        type Item = &'a mut T;
        type Iter = std::slice::IterMut<'a, T>;
        fn par_iter_mut(&'a mut self) -> Self::Iter {
            self.iter_mut()
        }
    }

    impl<'a, T: 'a> IntoParallelRefMutIterator<'a> for Vec<T> {
        type Item = &'a mut T;
        type Iter = std::slice::IterMut<'a, T>;
        fn par_iter_mut(&'a mut self) -> Self::Iter {
            self.iter_mut()
        }
    }

    pub trait IntoParallelRefIterator<'a> {
        type Item: 'a;
        type Iter: Iterator<Item = Self::Item>;
        fn par_iter(&'a self) -> Self::Iter;
    }

    impl<'a, T: 'a> IntoParallelRefIterator<'a> for [T] {
        type Item = &'a T;
        type Iter = std::slice::Iter<'a, T>;
        fn par_iter(&'a self) -> Self::Iter {
            self.iter()
        }
    }

    impl<'a, T: 'a> IntoParallelRefIterator<'a> for Vec<T> {
        type Item = &'a T;
        type Iter = std::slice::Iter<'a, T>;
        fn par_iter(&'a self) -> Self::Iter {
            self.iter()
        }
    }
}

pub mod prelude {
    pub use crate::iter::{
        IntoParallelIterator, IntoParallelRefIterator, IntoParallelRefMutIterator,
    };
}

/// Sequential stand-in for `rayon::ThreadPoolBuilder`: `build()` always
/// succeeds and the resulting pool's `install` simply runs the closure on
/// the calling thread (the real crate's behaviour with one thread).
#[derive(Default)]
pub struct ThreadPoolBuilder {
    _threads: usize,
}

pub struct ThreadPool;

#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

impl ThreadPoolBuilder {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn num_threads(mut self, n: usize) -> Self {
        self._threads = n;
        self
    }

    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        Ok(ThreadPool)
    }
}

impl ThreadPool {
    pub fn install<R>(&self, op: impl FnOnce() -> R) -> R {
        op()
    }
}
