//! Offline stand-in for `rayon`, implementing the subset this workspace
//! uses. The parallel-iterator entry points return plain std iterators,
//! so `.enumerate().map().collect()` chains compile unchanged and run
//! sequentially; [`scope`]/[`Scope::spawn`] are *real* fork-join
//! parallelism on scoped OS threads (`std::thread::scope`), which is what
//! the simulated machine's batched supersteps run on. Code written
//! against this crate is API-compatible with real rayon — swapping the
//! dependency changes host scheduling only, never results.

use std::cell::Cell;
use std::sync::OnceLock;

thread_local! {
    /// Thread-count override installed by [`ThreadPool::install`] (real
    /// rayon's `current_num_threads` reports the installed pool's width;
    /// this reproduces that inside the stub's inline `install`).
    static POOL_THREADS: Cell<usize> = const { Cell::new(0) };
}

/// Width of the current "pool": an [`ThreadPool::install`] override if
/// one is active, else `RAYON_NUM_THREADS` (the real crate's global-pool
/// env knob), else the host's available parallelism.
pub fn current_num_threads() -> usize {
    let installed = POOL_THREADS.with(|t| t.get());
    if installed > 0 {
        return installed;
    }
    static ENV: OnceLock<usize> = OnceLock::new();
    *ENV.get_or_init(|| {
        std::env::var("RAYON_NUM_THREADS")
            .ok()
            .and_then(|s| s.parse().ok())
            .filter(|&n| n > 0)
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1)
            })
    })
}

/// Fork-join scope handle (see [`scope`]).
pub struct Scope<'scope, 'env: 'scope>(&'scope std::thread::Scope<'scope, 'env>);

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawn `body` onto the scope. Unlike real rayon there is no
    /// work-stealing pool — each spawn is a scoped OS thread — so spawns
    /// should be coarse (the machine batches ranks per spawn for exactly
    /// this reason).
    pub fn spawn<F>(&self, body: F)
    where
        F: FnOnce(&Scope<'scope, 'env>) + Send + 'scope,
    {
        let inner = self.0;
        inner.spawn(move || body(&Scope(inner)));
    }
}

/// Structured fork-join: `f` may spawn tasks on the scope; all of them
/// complete before `scope` returns (`std::thread::scope` semantics, which
/// are also real rayon's).
pub fn scope<'env, F, R>(f: F) -> R
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R + Send,
    R: Send,
{
    std::thread::scope(|s| f(&Scope(s)))
}

pub mod iter {
    pub trait IntoParallelIterator {
        type Item;
        type Iter: Iterator<Item = Self::Item>;
        fn into_par_iter(self) -> Self::Iter;
    }

    impl<I: IntoIterator> IntoParallelIterator for I {
        type Item = I::Item;
        type Iter = I::IntoIter;
        fn into_par_iter(self) -> Self::Iter {
            self.into_iter()
        }
    }

    pub trait IntoParallelRefMutIterator<'a> {
        type Item: 'a;
        type Iter: Iterator<Item = Self::Item>;
        fn par_iter_mut(&'a mut self) -> Self::Iter;
    }

    impl<'a, T: 'a> IntoParallelRefMutIterator<'a> for [T] {
        type Item = &'a mut T;
        type Iter = std::slice::IterMut<'a, T>;
        fn par_iter_mut(&'a mut self) -> Self::Iter {
            self.iter_mut()
        }
    }

    impl<'a, T: 'a> IntoParallelRefMutIterator<'a> for Vec<T> {
        type Item = &'a mut T;
        type Iter = std::slice::IterMut<'a, T>;
        fn par_iter_mut(&'a mut self) -> Self::Iter {
            self.iter_mut()
        }
    }

    pub trait IntoParallelRefIterator<'a> {
        type Item: 'a;
        type Iter: Iterator<Item = Self::Item>;
        fn par_iter(&'a self) -> Self::Iter;
    }

    impl<'a, T: 'a> IntoParallelRefIterator<'a> for [T] {
        type Item = &'a T;
        type Iter = std::slice::Iter<'a, T>;
        fn par_iter(&'a self) -> Self::Iter {
            self.iter()
        }
    }

    impl<'a, T: 'a> IntoParallelRefIterator<'a> for Vec<T> {
        type Item = &'a T;
        type Iter = std::slice::Iter<'a, T>;
        fn par_iter(&'a self) -> Self::Iter {
            self.iter()
        }
    }
}

pub mod prelude {
    pub use crate::iter::{
        IntoParallelIterator, IntoParallelRefIterator, IntoParallelRefMutIterator,
    };
}

/// Stand-in for `rayon::ThreadPoolBuilder`: `build()` always succeeds;
/// the resulting pool's `install` runs the closure on the calling thread
/// with [`current_num_threads`] reporting the pool's configured width
/// (so thread-count-sensitive batching decisions see the pool size, as
/// they would under real rayon).
#[derive(Default)]
pub struct ThreadPoolBuilder {
    threads: usize,
}

pub struct ThreadPool {
    threads: usize,
}

#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

impl ThreadPoolBuilder {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn num_threads(mut self, n: usize) -> Self {
        self.threads = n;
        self
    }

    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        Ok(ThreadPool {
            threads: self.threads,
        })
    }
}

impl ThreadPool {
    pub fn install<R>(&self, op: impl FnOnce() -> R) -> R {
        if self.threads == 0 {
            return op();
        }
        let prev = POOL_THREADS.with(|t| t.replace(self.threads));
        // Restore on unwind too: a panicking closure must not leak the
        // override into unrelated code on this thread.
        struct Restore(usize);
        impl Drop for Restore {
            fn drop(&mut self) {
                POOL_THREADS.with(|t| t.set(self.0));
            }
        }
        let _restore = Restore(prev);
        op()
    }
}
