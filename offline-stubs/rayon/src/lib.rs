//! Offline sequential stand-in for `rayon`: the parallel-iterator entry
//! points return plain std iterators, so `.enumerate().map().collect()`
//! chains compile unchanged and run sequentially.

pub mod iter {
    pub trait IntoParallelIterator {
        type Item;
        type Iter: Iterator<Item = Self::Item>;
        fn into_par_iter(self) -> Self::Iter;
    }

    impl<I: IntoIterator> IntoParallelIterator for I {
        type Item = I::Item;
        type Iter = I::IntoIter;
        fn into_par_iter(self) -> Self::Iter {
            self.into_iter()
        }
    }

    pub trait IntoParallelRefMutIterator<'a> {
        type Item: 'a;
        type Iter: Iterator<Item = Self::Item>;
        fn par_iter_mut(&'a mut self) -> Self::Iter;
    }

    impl<'a, T: 'a> IntoParallelRefMutIterator<'a> for [T] {
        type Item = &'a mut T;
        type Iter = std::slice::IterMut<'a, T>;
        fn par_iter_mut(&'a mut self) -> Self::Iter {
            self.iter_mut()
        }
    }

    impl<'a, T: 'a> IntoParallelRefMutIterator<'a> for Vec<T> {
        type Item = &'a mut T;
        type Iter = std::slice::IterMut<'a, T>;
        fn par_iter_mut(&'a mut self) -> Self::Iter {
            self.iter_mut()
        }
    }

    pub trait IntoParallelRefIterator<'a> {
        type Item: 'a;
        type Iter: Iterator<Item = Self::Item>;
        fn par_iter(&'a self) -> Self::Iter;
    }

    impl<'a, T: 'a> IntoParallelRefIterator<'a> for [T] {
        type Item = &'a T;
        type Iter = std::slice::Iter<'a, T>;
        fn par_iter(&'a self) -> Self::Iter {
            self.iter()
        }
    }

    impl<'a, T: 'a> IntoParallelRefIterator<'a> for Vec<T> {
        type Item = &'a T;
        type Iter = std::slice::Iter<'a, T>;
        fn par_iter(&'a self) -> Self::Iter {
            self.iter()
        }
    }
}

pub mod prelude {
    pub use crate::iter::{
        IntoParallelIterator, IntoParallelRefIterator, IntoParallelRefMutIterator,
    };
}
