//! Offline shell for `criterion` so dev-dependency resolution and
//! `cargo clippy --all-targets` succeed without a registry. Benchmarks
//! type-check and run their closures once; no measurement happens.

pub struct Criterion;

impl Criterion {
    pub fn benchmark_group(&mut self, _name: &str) -> BenchmarkGroup {
        BenchmarkGroup
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, _name: &str, mut f: F) -> &mut Self {
        f(&mut Bencher);
        self
    }
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion
    }
}

pub struct BenchmarkGroup;

impl BenchmarkGroup {
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn measurement_time(&mut self, _d: std::time::Duration) -> &mut Self {
        self
    }

    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        _id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        f(&mut Bencher, input);
        self
    }

    pub fn finish(self) {}
}

pub struct Bencher;

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let _ = f();
    }
}

pub struct BenchmarkId;

impl BenchmarkId {
    pub fn new<P: std::fmt::Display>(_name: &str, _param: P) -> Self {
        BenchmarkId
    }

    pub fn from_parameter<P: std::fmt::Display>(_param: P) -> Self {
        BenchmarkId
    }
}

pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion;
            $($target(&mut c);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
